(* Chunked binary block-trace format.  See the .mli for the byte layout.

   The writer is straightforward buffered output.  The reader is the part
   that earns its keep: every malformed input — short header, short chunk,
   a length field that lies, a payload whose CRC disagrees — must come
   back as a typed [error], because the fuzzing campaign and the fetch
   simulator both treat this path as total.  No allocation is ever sized
   by an unvalidated length field. *)

let magic = "CCCSTRC1"
let version = 1
let header_bytes = 40
let max_chunk_visits = 1 lsl 20
let default_chunk_visits = 65536

(* A varint holds at most 62 payload bits (Writer.add is guarded), i.e.
   ceil 62/7 = 9 bytes; 10 is the format's hard per-visit bound. *)
let max_varint_bytes = 10

type error =
  | Io_error of { path : string; message : string }
  | Truncated_header of { got_bytes : int }
  | Bad_magic of { got : string }
  | Bad_version of { got : int }
  | Bad_chunk_length of { chunk : int; count : int; nbytes : int }
  | Truncated_chunk of { chunk : int; wanted_bytes : int; got_bytes : int }
  | Corrupt_chunk of { chunk : int; stored_crc : int; computed_crc : int }
  | Bad_varint of { chunk : int; index : int }
  | Visit_count_mismatch of { header : int; read : int }

let error_to_string = function
  | Io_error { path; message } -> Printf.sprintf "%s: %s" path message
  | Truncated_header { got_bytes } ->
      Printf.sprintf "truncated header: %d of %d bytes" got_bytes header_bytes
  | Bad_magic { got } -> Printf.sprintf "bad magic %S (want %S)" got magic
  | Bad_version { got } -> Printf.sprintf "unsupported version %d" got
  | Bad_chunk_length { chunk; count; nbytes } ->
      Printf.sprintf "chunk %d: implausible length fields count=%d nbytes=%d"
        chunk count nbytes
  | Truncated_chunk { chunk; wanted_bytes; got_bytes } ->
      Printf.sprintf "chunk %d: truncated, %d of %d bytes" chunk got_bytes
        wanted_bytes
  | Corrupt_chunk { chunk; stored_crc; computed_crc } ->
      Printf.sprintf "chunk %d: payload CRC %#x, stored guard %#x" chunk
        computed_crc stored_crc
  | Bad_varint { chunk; index } ->
      Printf.sprintf "chunk %d: malformed varint at visit %d" chunk index
  | Visit_count_mismatch { header; read } ->
      Printf.sprintf "header promises %d visits, chunks hold %d" header read

(* ------------------------------------------------------------------ *)
(* Little-endian field helpers.                                        *)

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)

let crc16 payload =
  Bits.Crc.of_string ~width:16 ~poly:Bits.Crc.crc16_poly payload

(* ------------------------------------------------------------------ *)
(* Writer.                                                             *)

type writer = {
  path : string;
  oc : out_channel;
  chunk_visits : int;
  payload : Buffer.t;
  mutable chunk_count : int;  (* visits buffered in [payload] *)
  mutable visits : int;
  mutable ops : int;
  mutable mops : int;
  mutable closed : bool;
}

let header_of w =
  let b = Bytes.create header_bytes in
  Bytes.blit_string magic 0 b 0 8;
  set_u32 b 8 version;
  set_u32 b 12 w.chunk_visits;
  set_u64 b 16 w.visits;
  set_u64 b 24 w.ops;
  set_u64 b 32 w.mops;
  b

let create ?(chunk_visits = default_chunk_visits) path =
  let chunk_visits = max 1 (min max_chunk_visits chunk_visits) in
  let oc = open_out_bin path in
  let w =
    {
      path;
      oc;
      chunk_visits;
      payload = Buffer.create 4096;
      chunk_count = 0;
      visits = 0;
      ops = 0;
      mops = 0;
      closed = false;
    }
  in
  output_bytes oc (header_of w);
  w

let flush_chunk w =
  if w.chunk_count > 0 then begin
    let payload = Buffer.contents w.payload in
    let hd = Bytes.create 8 in
    set_u32 hd 0 w.chunk_count;
    set_u32 hd 4 (String.length payload);
    output_bytes w.oc hd;
    output_string w.oc payload;
    let tl = Bytes.create 2 in
    Bytes.set_uint16_le tl 0 (crc16 payload);
    output_bytes w.oc tl;
    Buffer.clear w.payload;
    w.chunk_count <- 0
  end

let add w block =
  if w.closed then invalid_arg "Trace_stream.add: writer is closed";
  if block < 0 || block > 0x3FFFFFFFFFFFFFF then
    invalid_arg "Trace_stream.add: block id out of range";
  (* LEB128, least-significant 7-bit group first. *)
  let v = ref block in
  let continue = ref true in
  while !continue do
    let g = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char w.payload (Char.chr g);
      continue := false
    end
    else Buffer.add_char w.payload (Char.chr (g lor 0x80))
  done;
  w.chunk_count <- w.chunk_count + 1;
  w.visits <- w.visits + 1;
  if w.chunk_count >= w.chunk_visits then flush_chunk w

let record_ops w ~ops ~mops =
  w.ops <- w.ops + ops;
  w.mops <- w.mops + mops

let visits_written w = w.visits

let close w =
  if not w.closed then begin
    w.closed <- true;
    flush_chunk w;
    (* Patch the header in place with the true totals. *)
    seek_out w.oc 0;
    output_bytes w.oc (header_of w);
    close_out w.oc
  end

(* ------------------------------------------------------------------ *)
(* Reader.                                                             *)

type header = { visits : int; ops : int; mops : int; chunk_visits : int }

(* [read_exactly ic buf n] — up to [n] bytes into [buf]; returns how many
   were actually available (short only at end of file). *)
let read_exactly ic buf n =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    let k = input ic buf !got (n - !got) in
    if k = 0 then eof := true else got := !got + k
  done;
  !got

let parse_header buf got =
  if got < header_bytes then Error (Truncated_header { got_bytes = got })
  else
    let m = Bytes.sub_string buf 0 8 in
    if not (String.equal m magic) then Error (Bad_magic { got = m })
    else
      let v = get_u32 buf 8 in
      if v <> version then Error (Bad_version { got = v })
      else
        Ok
          {
            chunk_visits = get_u32 buf 12;
            visits = get_u64 buf 16;
            ops = get_u64 buf 24;
            mops = get_u64 buf 32;
          }

let with_ic path k =
  match open_in_bin path with
  | exception Sys_error message -> Error (Io_error { path; message })
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> k ic)

let read_header path =
  with_ic path (fun ic ->
      let buf = Bytes.create header_bytes in
      parse_header buf (read_exactly ic buf header_bytes))

(* Decode [count] varints from [payload] (length [nbytes]), feeding [f].
   Returns the number of payload bytes consumed, or a malformed index. *)
let decode_varints payload nbytes count f =
  let off = ref 0 in
  let bad = ref (-1) in
  let i = ref 0 in
  while !bad < 0 && !i < count do
    let v = ref 0 and shift = ref 0 and fin = ref false in
    while (not !fin) && !bad < 0 do
      if !off >= nbytes then bad := !i
      else begin
        let b = Char.code (Bytes.get payload !off) in
        incr off;
        let g = b land 0x7F in
        (* Reject any group that would push the value past 62 bits. *)
        if !shift > 62 || (!shift > 55 && g lsr (62 - !shift) <> 0) then
          bad := !i
        else begin
          v := !v lor (g lsl !shift);
          shift := !shift + 7;
          if b land 0x80 = 0 then fin := true
        end
      end
    done;
    if !bad < 0 then begin
      f !v;
      incr i
    end
  done;
  if !bad >= 0 then Error !bad else Ok !off

let fold path ~init ~f =
  with_ic path (fun ic ->
      let hbuf = Bytes.create header_bytes in
      match parse_header hbuf (read_exactly ic hbuf header_bytes) with
      | Error e -> Error e
      | Ok header ->
          let chunk_hd = Bytes.create 8 in
          let payload = ref (Bytes.create 4096) in
          let acc = ref init in
          let total = ref 0 in
          let chunk = ref 0 in
          let result = ref None in
          let fail e = result := Some (Error e) in
          while !result = None do
            match read_exactly ic chunk_hd 8 with
            | 0 ->
                (* Clean end of stream: the header total must agree. *)
                if !total <> header.visits then
                  fail
                    (Visit_count_mismatch
                       { header = header.visits; read = !total })
                else result := Some (Ok !acc)
            | 8 -> (
                let count = get_u32 chunk_hd 0 in
                let nbytes = get_u32 chunk_hd 4 in
                if
                  count < 1
                  || count > max_chunk_visits
                  || nbytes < count
                  || nbytes > max_varint_bytes * count
                then fail (Bad_chunk_length { chunk = !chunk; count; nbytes })
                else begin
                  if Bytes.length !payload < nbytes + 2 then
                    payload := Bytes.create (nbytes + 2);
                  let got = read_exactly ic !payload (nbytes + 2) in
                  if got < nbytes + 2 then
                    fail
                      (Truncated_chunk
                         {
                           chunk = !chunk;
                           wanted_bytes = nbytes + 2;
                           got_bytes = got;
                         })
                  else begin
                    let stored = Bytes.get_uint16_le !payload nbytes in
                    let computed =
                      crc16 (Bytes.sub_string !payload 0 nbytes)
                    in
                    if stored <> computed then
                      fail
                        (Corrupt_chunk
                           {
                             chunk = !chunk;
                             stored_crc = stored;
                             computed_crc = computed;
                           })
                    else
                      match
                        decode_varints !payload nbytes count (fun v ->
                            acc := f !acc v)
                      with
                      | Error index ->
                          fail (Bad_varint { chunk = !chunk; index })
                      | Ok consumed when consumed <> nbytes ->
                          (* Leftover payload bytes: the count and byte
                             length fields disagree about the contents. *)
                          fail
                            (Bad_chunk_length
                               { chunk = !chunk; count; nbytes })
                      | Ok _ ->
                          total := !total + count;
                          incr chunk
                  end
                end)
            | got ->
                fail
                  (Truncated_chunk
                     { chunk = !chunk; wanted_bytes = 8; got_bytes = got })
          done;
          (match !result with Some r -> r | None -> assert false))

let iter path ~f =
  match read_header path with
  | Error e -> Error e
  | Ok header -> (
      match fold path ~init:() ~f:(fun () v -> f v) with
      | Ok () -> Ok header
      | Error e -> Error e)

exception Format_error of error

let with_blocks path ~f =
  let iter_fn g =
    match fold path ~init:() ~f:(fun () v -> g v) with
    | Ok () -> ()
    | Error e -> raise (Format_error e)
  in
  match f iter_fn with
  | v -> Ok v
  | exception Format_error e -> Error e
