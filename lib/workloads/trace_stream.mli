(** Chunked binary block-trace format with bounded-memory streaming.

    The text format of [Emulator.Trace.save] materializes the whole visit
    sequence; production-volume traces (millions of block visits) need a
    format that can be written as the visits happen and replayed without
    ever holding more than one chunk in memory.  This module provides
    exactly that: a sequential {!writer} and a chunk-at-a-time reader whose
    every failure mode — truncated header, truncated chunk, corrupted
    length field, corrupted payload — surfaces as a typed {!error}, never
    an exception and never a silently short read.

    {2 Byte layout}

    All fixed-width integers are little-endian.

    {v
    header (40 bytes):
      0   magic        8 bytes  "CCCSTRC1"
      8   version      u32      1
      12  chunk_visits u32      writer's nominal visits per chunk
      16  visits       u64      total block visits in the file
      24  ops          u64      executed-op count (metadata, may be 0)
      32  mops         u64      executed-MOP count (metadata, may be 0)
    chunk (repeated until end of file):
      0   count        u32      visits in this chunk, 1 <= count
      4   nbytes       u32      payload length in bytes
      8   payload      nbytes   count LEB128 varints (7 bits per byte,
                                least-significant group first)
      8+n crc          u16      CRC-16/CCITT over the payload bytes
                                ({!Bits.Crc.crc16_poly}, zero init)
    v}

    Sanity bounds are part of the format: [count <= max_chunk_visits] and
    [count <= nbytes <= 10 * count] (a varint takes 1-10 bytes), so a
    corrupted length field is rejected before any allocation is sized by
    it.  The header's [visits] total is cross-checked against the sum of
    chunk counts at end of stream. *)

(** Hard upper bound on visits per chunk accepted by reader and writer. *)
val max_chunk_visits : int

type error =
  | Io_error of { path : string; message : string }
  | Truncated_header of { got_bytes : int }
      (** fewer than 40 header bytes *)
  | Bad_magic of { got : string }
  | Bad_version of { got : int }
  | Bad_chunk_length of { chunk : int; count : int; nbytes : int }
      (** a length field violates the format's sanity bounds *)
  | Truncated_chunk of { chunk : int; wanted_bytes : int; got_bytes : int }
  | Corrupt_chunk of { chunk : int; stored_crc : int; computed_crc : int }
  | Bad_varint of { chunk : int; index : int }
      (** a varint overruns the payload or exceeds 62 bits *)
  | Visit_count_mismatch of { header : int; read : int }
      (** the file ended cleanly but the chunk counts disagree with the
          header total *)

val error_to_string : error -> string

(** {1 Writing} *)

type writer

(** [create ?chunk_visits path] opens [path] for writing and emits a
    placeholder header ([chunk_visits] defaults to 65536 and is clamped to
    [\[1, max_chunk_visits\]]).  Raises [Sys_error] on I/O failure — the
    writer is for trusted producers; only the {e reader} must be total. *)
val create : ?chunk_visits:int -> string -> writer

(** [add w block] appends one visit.  Raises [Invalid_argument] on a
    negative block id. *)
val add : writer -> int -> unit

(** [record_ops w ~ops ~mops] accumulates executed op/MOP metadata for the
    header. *)
val record_ops : writer -> ops:int -> mops:int -> unit

(** [close w] flushes the final partial chunk, patches the header with the
    true totals and closes the file.  Idempotent. *)
val close : writer -> unit

(** [visits_written w] — visits added so far. *)
val visits_written : writer -> int

(** {1 Reading}

    All readers hold at most one chunk in memory (one reusable buffer of
    at most [10 * max_chunk_visits] bytes), so a million-block trace
    replays in bounded heap. *)

type header = { visits : int; ops : int; mops : int; chunk_visits : int }

(** [read_header path] validates magic, version and header length only. *)
val read_header : string -> (header, error) result

(** [fold path ~init ~f] streams every visit through [f] in file order. *)
val fold : string -> init:'a -> f:('a -> int -> 'a) -> ('a, error) result

(** [iter path ~f] — [fold] without an accumulator; returns the validated
    header on success. *)
val iter : string -> f:(int -> unit) -> (header, error) result

(** [with_blocks path ~f] hands [f] a push iterator over the file's visits
    and returns [f]'s result.  The iterator streams chunk by chunk; a
    format error aborts the iteration and surfaces as [Error] from
    [with_blocks] itself (exceptions raised by [f]'s callback propagate
    unchanged).  This is the bridge to push-based consumers such as
    [Fetch.Sim.run_iter], which cannot thread a [result] through their
    inner loop. *)
val with_blocks :
  string -> f:(((int -> unit) -> unit) -> 'a) -> ('a, error) result
