type dense_map = {
  width : int;
  to_new : (int, int) Hashtbl.t;
  to_old : int array;
}

type spec = {
  opcode_bits : int;
  spec_bit : bool;
  opcode_maps : (Tepic.Opcode.optype * dense_map) list;
  reg_maps : (Tepic.Reg.cls * dense_map) list;
  field_maps : (string * dense_map) list;
  widths : (Tepic.Opcode.kind * int) list;
}

(* A dense map over the set of values actually used.  A single-valued field
   costs zero bits: the decoder simply emits the constant. *)
let dense_of_values values =
  let sorted = List.sort_uniq compare values in
  let to_old = Array.of_list sorted in
  let n = Array.length to_old in
  let to_new = Hashtbl.create (2 * n) in
  Array.iteri (fun i v -> Hashtbl.replace to_new v i) to_old;
  let width = if n <= 1 then 0 else Bits.bits_needed n in
  { width; to_new; to_old }

let map_new m v =
  match Hashtbl.find_opt m.to_new v with
  | Some i -> i
  | None -> invalid_arg "Tailored: value outside the tailored map"

let map_old m i =
  if i < 0 || i >= Array.length m.to_old then
    invalid_arg "Tailored: dense index out of range";
  m.to_old.(i)

(* Fields dropped entirely from the tailored encoding. *)
let is_reserved = function "RES" | "RES2" | "RSV" -> true | _ -> false

(* Raw (non-dictionary) fields: values pass through at reduced width.
   Branch targets must stay raw so the linker can still patch them
   (paper §3.3 leaves "enough space for later plug-in of new targets");
   immediates get a program-specific constant pool instead — an indexed,
   fixed-width namespace, tailoring in the same sense as register
   renumbering. *)
let is_raw = function "TARGET" -> true | _ -> false

(* Register fields, class decided by opcode (conversions cross files) and,
   for memory ops, by the TCS target-file specifier read earlier in the
   layout. *)
let reg_class_of_field (opcode : Tepic.Opcode.t) ~tcs fname =
  match (Tepic.Opcode.kind opcode, fname) with
  | (Tepic.Opcode.K_alu | K_cmpp), ("SRC1" | "SRC2") -> Some Tepic.Reg.Gpr
  | Tepic.Opcode.K_alu, "DEST" -> Some Tepic.Reg.Gpr
  | Tepic.Opcode.K_cmpp, "DEST" -> Some Tepic.Reg.Pr
  | Tepic.Opcode.K_ldi, "DEST" -> Some Tepic.Reg.Gpr
  | Tepic.Opcode.K_fpu, "SRC1" ->
      Some (if opcode = Tepic.Opcode.ITOF then Tepic.Reg.Gpr else Tepic.Reg.Fpr)
  | Tepic.Opcode.K_fpu, "SRC2" -> Some Tepic.Reg.Fpr
  | Tepic.Opcode.K_fpu, "DEST" ->
      Some (if opcode = Tepic.Opcode.FTOI then Tepic.Reg.Gpr else Tepic.Reg.Fpr)
  | Tepic.Opcode.K_load, "SRC1" -> Some Tepic.Reg.Gpr
  | Tepic.Opcode.K_load, "DEST" ->
      Some (if tcs = 1 then Tepic.Reg.Fpr else Tepic.Reg.Gpr)
  | Tepic.Opcode.K_store, "SRC1" -> Some Tepic.Reg.Gpr
  | Tepic.Opcode.K_store, "SRC2" ->
      Some (if tcs = 1 then Tepic.Reg.Fpr else Tepic.Reg.Gpr)
  | Tepic.Opcode.K_branch, ("SRC1" | "COUNTER") -> Some Tepic.Reg.Gpr
  | _, "PRED" -> Some Tepic.Reg.Pr
  | _ -> None

(* Classes a field of [kind] can hold, independent of the concrete opcode —
   fixes the field's width (the max over candidate class maps). *)
let reg_classes_of_field (kind : Tepic.Opcode.kind) fname :
    Tepic.Reg.cls list =
  match (kind, fname) with
  | (Tepic.Opcode.K_alu | K_cmpp), ("SRC1" | "SRC2") -> [ Tepic.Reg.Gpr ]
  | Tepic.Opcode.K_alu, "DEST" | Tepic.Opcode.K_ldi, "DEST" -> [ Tepic.Reg.Gpr ]
  | Tepic.Opcode.K_cmpp, "DEST" -> [ Tepic.Reg.Pr ]
  | Tepic.Opcode.K_fpu, ("SRC1" | "DEST") -> [ Tepic.Reg.Gpr; Tepic.Reg.Fpr ]
  | Tepic.Opcode.K_fpu, "SRC2" -> [ Tepic.Reg.Fpr ]
  | Tepic.Opcode.K_load, "SRC1" | Tepic.Opcode.K_store, "SRC1" ->
      [ Tepic.Reg.Gpr ]
  | Tepic.Opcode.K_load, "DEST" | Tepic.Opcode.K_store, "SRC2" ->
      [ Tepic.Reg.Gpr; Tepic.Reg.Fpr ]
  | Tepic.Opcode.K_branch, ("SRC1" | "COUNTER") -> [ Tepic.Reg.Gpr ]
  | _, "PRED" -> [ Tepic.Reg.Pr ]
  | _ -> []

let spec_of_program program =
  (* Collect used values. *)
  let opcode_vals : (Tepic.Opcode.optype, int list ref) Hashtbl.t =
    Hashtbl.create 7
  in
  let reg_vals : (Tepic.Reg.cls, int list ref) Hashtbl.t = Hashtbl.create 7 in
  let field_vals : (string, int list ref) Hashtbl.t = Hashtbl.create 17 in
  let raw_max : (string, int ref) Hashtbl.t = Hashtbl.create 7 in
  let bucket tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add tbl key (ref [ v ])
  in
  let any_spec = ref false in
  Tepic.Program.iter_ops
    (fun op ->
      if op.Tepic.Op.spec then any_spec := true;
      let opcode = Tepic.Op.opcode op in
      bucket opcode_vals (Tepic.Opcode.optype opcode) (Tepic.Opcode.code opcode);
      List.iter
        (fun (r : Tepic.Reg.t) -> bucket reg_vals r.Tepic.Reg.cls r.Tepic.Reg.index)
        (Tepic.Op.regs op);
      (* Predicate 0 must stay representable: unpredicated ops use it. *)
      bucket reg_vals Tepic.Reg.Pr 0;
      let tcs = try Tepic.Op.field_value op "TCS" with Not_found -> 0 in
      List.iter
        (fun (fd, v) ->
          let name = fd.Tepic.Format_spec.fname in
          if is_reserved name then ()
          else if is_raw name then begin
            match Hashtbl.find_opt raw_max name with
            | Some r -> r := max !r v
            | None -> Hashtbl.add raw_max name (ref v)
          end
          else if
            name = "T" || name = "S" || name = "OPT" || name = "OPCODE"
            || reg_class_of_field opcode ~tcs name <> None
          then ()
          else bucket field_vals name v)
        (Tepic.Op.fields op))
    program;
  let opcode_maps =
    Hashtbl.fold
      (fun ty r acc -> (ty, dense_of_values !r) :: acc)
      opcode_vals []
    |> List.sort compare
  in
  let opcode_bits =
    List.fold_left (fun a (_, m) -> max a m.width) 0 opcode_maps
  in
  let reg_maps =
    Hashtbl.fold (fun c r acc -> (c, dense_of_values !r) :: acc) reg_vals []
    |> List.sort compare
  in
  let field_maps =
    Hashtbl.fold (fun n r acc -> (n, dense_of_values !r) :: acc) field_vals []
    |> List.sort compare
  in
  let field_maps =
    (* Raw fields become identity "maps" encoded as width-only entries:
       represent them as dense maps over [0, max] without a table by
       storing an empty table and the raw width. *)
    Hashtbl.fold
      (fun n r acc ->
        ( n,
          {
            width = Bits.bits_needed (!r + 1);
            to_new = Hashtbl.create 1;
            to_old = [||];
          } )
        :: acc)
      raw_max field_maps
    |> List.sort compare
  in
  let spec0 =
    {
      opcode_bits;
      spec_bit = !any_spec;
      opcode_maps;
      reg_maps;
      field_maps;
      widths = [];
    }
  in
  spec0

let reg_map spec c =
  match List.assoc_opt c spec.reg_maps with
  | Some m -> m
  | None -> { width = 0; to_new = Hashtbl.create 1; to_old = [| 0 |] }

let field_map spec name =
  match List.assoc_opt name spec.field_maps with
  | Some m -> m
  | None -> { width = 0; to_new = Hashtbl.create 1; to_old = [| 0 |] }

(* Tailored width of a non-prefix field in format [kind]. *)
let field_width spec kind (fd : Tepic.Format_spec.field) =
  let name = fd.Tepic.Format_spec.fname in
  if is_reserved name then 0
  else
    match reg_classes_of_field kind name with
    | [] -> (field_map spec name).width
    | classes ->
        List.fold_left (fun a c -> max a (reg_map spec c).width) 0 classes

let header_bits spec = 1 + (if spec.spec_bit then 1 else 0) + 2 + spec.opcode_bits

let op_bits spec kind =
  List.fold_left
    (fun a fd ->
      if List.mem fd.Tepic.Format_spec.fname [ "T"; "S"; "OPT"; "OPCODE" ] then a
      else a + field_width spec kind fd)
    (header_bits spec)
    (Tepic.Format_spec.layout kind)

let finalize_spec spec =
  {
    spec with
    widths = List.map (fun k -> (k, op_bits spec k)) Tepic.Format_spec.kinds;
  }

let encode_op spec w (op : Tepic.Op.t) =
  let opcode = Tepic.Op.opcode op in
  let kind = Tepic.Opcode.kind opcode in
  let ty = Tepic.Opcode.optype opcode in
  Bits.Writer.add_bits w ~width:1 (if op.Tepic.Op.tail then 1 else 0);
  if spec.spec_bit then
    Bits.Writer.add_bits w ~width:1 (if op.Tepic.Op.spec then 1 else 0);
  Bits.Writer.add_bits w ~width:2 (Tepic.Opcode.optype_code ty);
  let omap = List.assoc ty spec.opcode_maps in
  Bits.Writer.add_bits w ~width:spec.opcode_bits
    (map_new omap (Tepic.Opcode.code opcode));
  let tcs = try Tepic.Op.field_value op "TCS" with Not_found -> 0 in
  List.iter
    (fun (fd, v) ->
      let name = fd.Tepic.Format_spec.fname in
      if List.mem name [ "T"; "S"; "OPT"; "OPCODE" ] || is_reserved name then ()
      else begin
        let width = field_width spec kind fd in
        let encoded =
          match reg_class_of_field opcode ~tcs name with
          | Some c -> map_new (reg_map spec c) v
          | None -> if is_raw name then v else map_new (field_map spec name) v
        in
        if width > 0 then Bits.Writer.add_bits w ~width encoded
        else if encoded <> 0 then
          invalid_arg "Tailored.encode_op: nonzero value in zero-width field"
      end)
    (Tepic.Op.fields op)

let decode_op spec r =
  let tail = Bits.Reader.read_bits r ~width:1 = 1 in
  let sp = if spec.spec_bit then Bits.Reader.read_bits r ~width:1 = 1 else false in
  let ty = Tepic.Opcode.optype_of_code (Bits.Reader.read_bits r ~width:2) in
  let omap = List.assoc ty spec.opcode_maps in
  let code = map_old omap (Bits.Reader.read_bits r ~width:spec.opcode_bits) in
  let opcode =
    match Tepic.Opcode.of_code ty code with
    | Some oc -> oc
    | None -> invalid_arg "Tailored.decode_op: bad opcode"
  in
  let kind = Tepic.Opcode.kind opcode in
  let tbl = Hashtbl.create 17 in
  Hashtbl.replace tbl "T" (if tail then 1 else 0);
  Hashtbl.replace tbl "S" (if sp then 1 else 0);
  Hashtbl.replace tbl "OPT" (Tepic.Opcode.optype_code ty);
  Hashtbl.replace tbl "OPCODE" code;
  (* Pass 1: pull every field's raw bits (widths depend only on the
     format).  A hardware decoder sees all bits at once; sequentially we
     must buffer them because a field's register file can depend on a
     later field (the store format puts SRC2 before TCS). *)
  let raws =
    List.filter_map
      (fun fd ->
        let name = fd.Tepic.Format_spec.fname in
        if List.mem name [ "T"; "S"; "OPT"; "OPCODE" ] then None
        else if is_reserved name then Some (name, 0)
        else begin
          let width = field_width spec kind fd in
          Some (name, if width > 0 then Bits.Reader.read_bits r ~width else 0)
        end)
      (Tepic.Format_spec.layout kind)
  in
  (* Resolve TCS first: it selects register files. *)
  let tcs =
    match List.assoc_opt "TCS" raws with
    | Some raw -> map_old (field_map spec "TCS") raw
    | None -> 0
  in
  List.iter
    (fun (name, raw) ->
      let v =
        if is_reserved name then 0
        else
          match reg_class_of_field opcode ~tcs name with
          | Some c -> map_old (reg_map spec c) raw
          | None ->
              if is_raw name then raw else map_old (field_map spec name) raw
      in
      Hashtbl.replace tbl name v)
    raws;
  Tepic.Op.of_fields kind (Hashtbl.find tbl)

let build_with_spec program =
  let spec = finalize_spec (spec_of_program program) in
  let image, offsets, sizes =
    Scheme.build_blocks program (fun w ops -> List.iter (encode_op spec w) ops)
  in
  let counts =
    Array.map
      (fun b -> Tepic.Program.block_num_ops b)
      program.Tepic.Program.blocks
  in
  let decode_payload r i =
    List.init counts.(i) (fun _ -> decode_op spec r)
  in
  (* The tailored "table" cost is the PLA's value maps: every dense map
     entry stores its original value. *)
  let map_bits m =
    Array.fold_left (fun a v -> a + max 1 (Bits.bits_needed (v + 1))) 0 m.to_old
  in
  let table_bits =
    List.fold_left (fun a (_, m) -> a + map_bits m) 0 spec.reg_maps
    + List.fold_left (fun a (_, m) -> a + map_bits m) 0 spec.opcode_maps
    + List.fold_left (fun a (_, m) -> a + map_bits m) 0 spec.field_maps
  in
  ( {
      Scheme.name = "tailored";
      image;
      code_bits = 8 * String.length image;
      table_bits;
      block_offset_bits = offsets;
      block_bits = sizes;
      frame = Scheme.no_frame;
      decoder =
        { dict_entries = 0; max_code_bits = 0; entry_bits = 0; transistors = 0 };
      books = [];
      model =
        (let widths = List.map snd spec.widths in
         [
           Scheme.Fixed_bits
             {
               label = "tailored-op";
               min_bits = List.fold_left min max_int widths;
               max_bits = List.fold_left max 0 widths;
             };
         ]);
      decode_payload;
      decode_block = Scheme.block_decoder ~image ~offsets decode_payload;
    },
    spec )

let build program = fst (build_with_spec program)
