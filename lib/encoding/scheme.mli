(** Common shape of every code-layout scheme in the study.

    A scheme turns a scheduled program into a ROM image plus everything the
    evaluation needs: per-block offsets and sizes (blocks are the atomic
    fetch unit and are byte-aligned, paper §3.3), the ROM cost of any
    decode tables, the decoder complexity parameters, and a verified
    decoder back to the original operations.

    A scheme may additionally carry a {e protected} block framing
    ({!protect}): every block is wrapped as
    [length-field | payload | guard-word], where the guard word is a
    CRC-8/16 over the payload bits and the length field pins the payload
    extent.  Protection makes every single-bit fault inside a block frame
    detectable — a flipped Huffman codeword otherwise desynchronizes every
    symbol after it with no signal — at a measurable compression-ratio
    cost ([code_bits] includes the framing). *)

type decoder_info = {
  dict_entries : int;  (** k — dictionary entries (0: no dictionary) *)
  max_code_bits : int;  (** n — longest codeword *)
  entry_bits : int;  (** m — longest dictionary entry *)
  transistors : int;
      (** worst-case Huffman-decoder cost per the paper's model; 0 for
          schemes decoded by plain field extraction (base, tailored) *)
}

(** Soft-error guard applied to each block frame. *)
type protection = Unprotected | Crc8 | Crc16

val guard_bits_of : protection -> int

(** [poly_of p] — the CRC generator polynomial of [p] (0 for
    [Unprotected]). *)
val poly_of : protection -> int

val protection_name : protection -> string
val protection_of_name : string -> protection option

(** Block framing metadata.  [no_frame] for bare schemes; {!protect}
    installs a real frame. *)
type frame = {
  protection : protection;
  len_bits : int;  (** width of the explicit block-length field *)
  guard_bits : int;  (** width of the per-block CRC guard word *)
  protection_bits : int;
      (** total framing overhead over all blocks — the ROM cost of
          protection, reported next to the Figure 5 ratios *)
}

val no_frame : frame

(** One component of a scheme's declarative decode model: where the bits
    of a decoded op come from.  [Fixed_bits] — a fixed-layout field group
    consuming between [min_bits] and [max_bits] per op ([label] names it
    in certificates); [Book_codewords] — at most [max_per_op] codewords
    per op drawn from the published codebook named [book]. *)
type code_source =
  | Fixed_bits of { label : string; min_bits : int; max_bits : int }
  | Book_codewords of { book : string; max_per_op : int }

type t = {
  name : string;
  image : string;  (** the code segment, blocks contiguous, byte-aligned *)
  code_bits : int;  (** total code-segment size (image length in bits) *)
  table_bits : int;  (** ROM bits for decode tables / dictionaries *)
  block_offset_bits : int array;  (** bit offset of each block (mult. of 8) *)
  block_bits : int array;  (** compressed size of each block, incl. framing *)
  frame : frame;
  decoder : decoder_info;
  books : (string * Huffman.Codebook.t) list;
      (** the Huffman codebooks behind the image, if any (one per stream
          for the stream schemes); exposed so static analysis can audit
          prefix-freeness, Kraft completeness and canonical ordering *)
  model : code_source list;
      (** the declarative decode model: summed over the sources, the
          certified bounds on the bits one decoded op consumes.  The
          static certification pass proves each [Book_codewords] source
          against its codebook's decode automaton and checks every built
          block against the implied worst-case size (framing excluded —
          {!protect} accounts for it separately and preserves the model) *)
  decode_payload : Bits.Reader.t -> int -> Tepic.Op.t list;
      (** [decode_payload r i] — decode block [i]'s ops starting at [r]'s
          current position (which need not lie in this scheme's own image:
          fault campaigns decode corrupted copies).  May raise on malformed
          input; {!decode_block_checked} is the total wrapper. *)
  decode_block : int -> Tepic.Op.t list;
      (** decompress block [i] of the scheme's own image back to its exact
          original ops *)
}

(** [ratio t ~baseline_bits] — code-segment compression ratio (1.0 = no
    gain), the quantity plotted in the paper's Figure 5.  For a protected
    scheme the framing bits are part of [code_bits], so the protection
    cost shows up here. *)
val ratio : t -> baseline_bits:int -> float

(** Where and why a checked decode rejected a block. *)
type decode_error = {
  scheme : string;
  block : int;
  bit : int;  (** absolute bit position in the image at detection *)
  reason : string;
}

val pp_decode_error : Format.formatter -> decode_error -> unit
val decode_error_to_string : decode_error -> string

(** [payload_bits t i] — block [i]'s framed payload size: [block_bits]
    minus the length field and guard word. *)
val payload_bits : t -> int -> int

(** [decode_block_checked ?image t i] — total decode of block [i], reading
    from [image] (default: the scheme's own ROM).  Never raises on
    corrupted data: all decoder exceptions, over- and under-consumption of
    the block's bits and — for protected schemes — length-field and CRC
    guard mismatches are returned as [Error].  An [Ok] result from a
    protected frame means the payload passed its guard word. *)
val decode_block_checked :
  ?image:string -> t -> int -> (Tepic.Op.t list, decode_error) result

(** [decode_block_checked_at t r i] — {!decode_block_checked} with the
    reader [r] already positioned on block [i]'s first bit.  The chunked
    parallel decoder walks blocks back-to-back through this, so a corrupt
    stream yields the same typed error at the same bit position as the
    sequential checked decode.  On [Ok] the cursor rests just past the
    block's last framed bit (before any byte-alignment padding). *)
val decode_block_checked_at :
  t -> Bits.Reader.t -> int -> (Tepic.Op.t list, decode_error) result

(** [protect p t] — re-frame every block of [t] as
    [length | payload | guard] with a CRC-[p] guard word, byte-aligned like
    the original layout.  [code_bits], offsets and sizes describe the
    protected image; [frame.protection_bits] isolates the overhead.
    [protect Unprotected] is the identity.  Raises [Invalid_argument] if
    [t] is already protected. *)
val protect : protection -> t -> t

(** [verify t program] — decode every block and compare with the original
    ops, and check that the decoder consumed exactly the bits the block
    frame holds (over/under-consumption can silently mis-decode even when
    the ops happen to match).  Raises [Failure] with a diagnostic on the
    first mismatch. *)
val verify : t -> Tepic.Program.t -> unit

(** [build_blocks program encode_block] — shared image builder: runs
    [encode_block writer ops] per block, byte-aligns each block start, and
    assembles image/offsets/sizes.  [block_bits] excludes the alignment
    padding (it is accounted to the image, as in the paper's totals). *)
val build_blocks :
  Tepic.Program.t ->
  (Bits.Writer.t -> Tepic.Op.t list -> unit) ->
  string * int array * int array

(** [block_decoder ~image ~offsets decode_payload] — the standard
    [decode_block]: seek to block [i] in [image] and run [decode_payload]. *)
val block_decoder :
  image:string ->
  offsets:int array ->
  (Bits.Reader.t -> int -> Tepic.Op.t list) ->
  int ->
  Tepic.Op.t list
