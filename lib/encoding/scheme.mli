(** Common shape of every code-layout scheme in the study.

    A scheme turns a scheduled program into a ROM image plus everything the
    evaluation needs: per-block offsets and sizes (blocks are the atomic
    fetch unit and are byte-aligned, paper §3.3), the ROM cost of any
    decode tables, the decoder complexity parameters, and a verified
    decoder back to the original operations. *)

type decoder_info = {
  dict_entries : int;  (** k — dictionary entries (0: no dictionary) *)
  max_code_bits : int;  (** n — longest codeword *)
  entry_bits : int;  (** m — longest dictionary entry *)
  transistors : int;
      (** worst-case Huffman-decoder cost per the paper's model; 0 for
          schemes decoded by plain field extraction (base, tailored) *)
}

type t = {
  name : string;
  image : string;  (** the code segment, blocks contiguous, byte-aligned *)
  code_bits : int;  (** total code-segment size (image length in bits) *)
  table_bits : int;  (** ROM bits for decode tables / dictionaries *)
  block_offset_bits : int array;  (** bit offset of each block (mult. of 8) *)
  block_bits : int array;  (** compressed size of each block *)
  decoder : decoder_info;
  books : (string * Huffman.Codebook.t) list;
      (** the Huffman codebooks behind the image, if any (one per stream
          for the stream schemes); exposed so static analysis can audit
          prefix-freeness, Kraft completeness and canonical ordering *)
  decode_block : int -> Tepic.Op.t list;
      (** decompress block [i] back to its exact original ops *)
}

(** [ratio t ~baseline_bits] — code-segment compression ratio (1.0 = no
    gain), the quantity plotted in the paper's Figure 5. *)
val ratio : t -> baseline_bits:int -> float

(** [verify t program] — decode every block and compare with the original
    ops.  Raises [Failure] with a diagnostic on the first mismatch. *)
val verify : t -> Tepic.Program.t -> unit

(** [build_blocks program encode_block] — shared image builder: runs
    [encode_block writer ops] per block, byte-aligns each block start, and
    assembles image/offsets/sizes.  [block_bits] excludes the alignment
    padding (it is accounted to the image, as in the paper's totals). *)
val build_blocks :
  Tepic.Program.t ->
  (Bits.Writer.t -> Tepic.Op.t list -> unit) ->
  string * int array * int array
