let build program =
  let image, offsets, sizes =
    Scheme.build_blocks program (fun w ops ->
        List.iter (Tepic.Encode.encode w) ops)
  in
  let counts =
    Array.map
      (fun b -> Tepic.Program.block_num_ops b)
      program.Tepic.Program.blocks
  in
  let decode_payload r i =
    List.init counts.(i) (fun _ -> Tepic.Encode.decode r)
  in
  {
    Scheme.name = "base";
    image;
    code_bits = 8 * String.length image;
    table_bits = 0;
    block_offset_bits = offsets;
    block_bits = sizes;
    frame = Scheme.no_frame;
    decoder =
      { dict_entries = 0; max_code_bits = 0; entry_bits = 0; transistors = 0 };
    books = [];
    model =
      [
        Scheme.Fixed_bits
          {
            label = "op";
            min_bits = Tepic.Format_spec.op_bits;
            max_bits = Tepic.Format_spec.op_bits;
          };
      ];
    decode_payload;
    decode_block = Scheme.block_decoder ~image ~offsets decode_payload;
  }
