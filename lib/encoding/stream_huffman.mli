(** Stream-based Huffman compression (paper §2.2, Figure 3).

    Operation fields are partitioned into independent compression streams
    at fixed field boundaries; each stream gets its own Huffman code, and
    an op is the concatenation of its streams' codewords.  Exploits fields
    that are individually very repetitive (OPT/OPCODE pairs, the
    almost-always-true predicate) without paying for their cross-product.

    The paper evaluated six stream configurations and reported the two
    best: ["stream"] (smallest decoder) and ["stream_1"] (smallest code).
    All six are available here; {!configs} lists them in that order. *)

val max_code_len : int

(** Stream symbols are packed as [value | width << 42] so that, e.g., a
    10-bit zero and a 13-bit zero are distinct dictionary entries.  The
    packing is part of the published alphabet: an independent decoder must
    unpack symbols the same way to recover field values. *)
val pack : value:int -> width:int -> int

(** [unpack sym] is [(value, width)]; inverse of {!pack}. *)
val unpack : int -> int * int

(** The six stream partitions.  Every configuration keeps the T/S/OPT/
    OPCODE prefix in stream 0, which is what makes the code decodable
    (the prefix identifies the format and hence every other stream's
    symbol width). *)
val configs : (string * Tepic.Field_stream.t) list

(** [build ?config program] — default configuration is ["stream"]. *)
val build : ?config:Tepic.Field_stream.t -> Tepic.Program.t -> Scheme.t
