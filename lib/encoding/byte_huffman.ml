let max_code_len = 12

let build program =
  (* Histogram over the bytes of every op's baseline image, block by
     block (annotation-free, code segment only). *)
  let freq = Huffman.Freq.create () in
  Tepic.Program.iter_ops
    (fun op ->
      String.iter
        (fun c -> Huffman.Freq.add freq (Char.code c))
        (Tepic.Encode.encode_ops [ op ]))
    program;
  let book =
    Huffman.Codebook.make ~max_len:max_code_len ~symbol_bits:(fun _ -> 8) freq
  in
  let image, offsets, sizes =
    Scheme.build_blocks program (fun w ops ->
        String.iter
          (fun c -> Huffman.Codebook.write book w (Char.code c))
          (Tepic.Encode.encode_ops ops))
  in
  let counts =
    Array.map
      (fun b -> Tepic.Program.block_num_ops b)
      program.Tepic.Program.blocks
  in
  let decode_payload r i =
    let bytes = Bytes.create (Tepic.Format_spec.op_bytes * counts.(i)) in
    for j = 0 to Bytes.length bytes - 1 do
      Bytes.set bytes j (Char.chr (Huffman.Codebook.read book r))
    done;
    Tepic.Encode.decode_ops ~count:counts.(i) (Bytes.to_string bytes)
  in
  let stats = Huffman.Codebook.stats book in
  {
    Scheme.name = "byte";
    image;
    code_bits = 8 * String.length image;
    table_bits = stats.Huffman.Codebook.table_bits;
    block_offset_bits = offsets;
    block_bits = sizes;
    frame = Scheme.no_frame;
    decoder =
      {
        dict_entries = stats.Huffman.Codebook.entries;
        max_code_bits = stats.Huffman.Codebook.max_code_len;
        entry_bits = stats.Huffman.Codebook.max_symbol_bits;
        transistors = Huffman.Codebook.decoder_transistors book;
      };
    books = [ ("byte", book) ];
    model =
      [
        Scheme.Book_codewords
          { book = "byte"; max_per_op = Tepic.Format_spec.op_bytes };
      ];
    decode_payload;
    decode_block = Scheme.block_decoder ~image ~offsets decode_payload;
  }
