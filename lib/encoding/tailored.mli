(** Tailored ISA generation (paper §2.3, Figure 4).

    Instead of compressing, re-encode: every field gets exactly the width
    this program needs, and no more.  Registers are renumbered densely per
    class; opcodes densely per type; field values that never vary
    disappear; reserved fields are dropped outright.  The T bit, OPT and
    OPCODE stay at fixed positions and fixed sizes so the decoder needs no
    search (the property the paper calls out explicitly) — decoding is
    plain field extraction programmed into the PLA, with {e no} Huffman
    dictionary and no extra pipeline stage.

    Each format keeps a fixed width, so the op stream is
    variable-per-format but static-per-opcode — exactly what the tailored
    ICache's miss-path alignment logic relies on (§5). *)

(** A dense value mapping for one field: [width] bits index [to_old]. *)
type dense_map = {
  width : int;
  to_new : (int, int) Hashtbl.t;
  to_old : int array;
}

(** The complete re-encoding specification the compiler derives; this is
    also what {!Decoder_gen} turns into the PLA's Verilog. *)
type spec = {
  opcode_bits : int;  (** fixed OPCODE field width across formats *)
  spec_bit : bool;  (** whether an S bit is present at all *)
  opcode_maps : (Tepic.Opcode.optype * dense_map) list;
  reg_maps : (Tepic.Reg.cls * dense_map) list;
  field_maps : (string * dense_map) list;  (** non-register fields *)
  widths : (Tepic.Opcode.kind * int) list;  (** total op bits per format *)
}

val spec_of_program : Tepic.Program.t -> spec

(** [op_bits spec kind] — tailored width of ops of format [kind]. *)
val op_bits : spec -> Tepic.Opcode.kind -> int

(** {1 Published field layout}

    The pieces of the PLA's field-extraction program, exposed so an
    independent decoder (the translation validator's abstract decoder)
    can re-derive the bit layout without the encoder's closures. *)

(** Fields dropped entirely from the tailored encoding. *)
val is_reserved : string -> bool

(** Raw fields whose values pass through at reduced width (branch targets
    stay patchable by the linker). *)
val is_raw : string -> bool

(** [reg_class_of_field opcode ~tcs fname] — the register file a field
    indexes, decided by the opcode and (for memory ops) the TCS target
    specifier; [None] for non-register fields. *)
val reg_class_of_field : Tepic.Opcode.t -> tcs:int -> string -> Tepic.Reg.cls option

(** [reg_map spec cls] / [field_map spec name] — the dense map serving a
    register class or a named non-register field (a zero-width constant
    map when the program never varies the field). *)
val reg_map : spec -> Tepic.Reg.cls -> dense_map

val field_map : spec -> string -> dense_map

(** [field_width spec kind fd] — tailored width of a non-prefix field in
    format [kind]. *)
val field_width : spec -> Tepic.Opcode.kind -> Tepic.Format_spec.field -> int

(** [header_bits spec] — T + optional S + OPT + OPCODE prefix width. *)
val header_bits : spec -> int

val build : Tepic.Program.t -> Scheme.t

(** [build_with_spec program] — also return the derived specification
    (used by the decoder generator and the examples). *)
val build_with_spec : Tepic.Program.t -> Scheme.t * spec
