(** Sequence-dictionary compression (Liao et al., the paper's §6 related
    work: the External Pointer Model of Storer & Szymanski).

    Repeated op sequences (including single frequent ops — Liao's
    call-dictionary degenerate case) are hoisted into a dictionary; the code
    stream becomes a mix of escaped literals (1 + 40 bits) and dictionary
    references (1 + index bits).  Matches never cross block boundaries —
    blocks stay the atomic fetch unit — and the decoder is an indexed ROM
    rather than a Huffman mux tree, so its {!Scheme.decoder_info} reports
    zero tree transistors.

    The paper's critique of this family (coarse granularity misses
    opportunities; Liao reports ≈ 30 % reduction at assembly level) is
    observable here: the scheme lands between byte-wise Huffman and the
    tailored ISA on our workloads, well behind whole-op Huffman. *)

(** Maximum sequence length considered (ops). *)
val max_seq_len : int

(** Maximum dictionary entries. *)
val max_entries : int

(** [entries_of_program program] — the dictionary ROM contents (each entry
    a sequence of 40-bit op images), exactly as {!build} selects them.
    Deterministic in the program, so an independent decoder can reconstruct
    the published table without the encoder instance. *)
val entries_of_program : Tepic.Program.t -> int list array

(** [index_bits ~nentries] — width of a dictionary reference index. *)
val index_bits : nentries:int -> int

val build : Tepic.Program.t -> Scheme.t
