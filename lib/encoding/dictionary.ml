let max_seq_len = 4
let max_entries = 256

let op_bits = Tepic.Format_spec.op_bits

(* Candidate sequences: every 1..max_seq_len run inside a block, counted by
   the tuple of 40-bit images. *)
let collect_candidates program =
  let counts : (int list, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let note seq =
    match Hashtbl.find_opt counts seq with
    | Some r -> incr r
    | None -> Hashtbl.add counts seq (ref 1)
  in
  Array.iter
    (fun b ->
      let ops =
        Array.of_list
          (List.map Tepic.Encode.to_int (Tepic.Program.block_ops b))
      in
      let n = Array.length ops in
      for i = 0 to n - 1 do
        for len = 1 to min max_seq_len (n - i) do
          note (Array.to_list (Array.sub ops i len))
        done
      done)
    program.Tepic.Program.blocks;
  counts

(* Pick entries greedily by estimated saving.  A literal op costs 41 bits
   in this format; a reference costs 1 + index bits; a dictionary entry
   costs len * 40 bits of ROM. *)
let select_entries counts =
  let idx_bits = Bits.bits_needed max_entries in
  let scored =
    Hashtbl.fold
      (fun seq r acc ->
        let len = List.length seq in
        let saving =
          (!r * ((len * (op_bits + 1)) - (1 + idx_bits))) - (len * op_bits)
        in
        if !r >= 2 && saving > 0 then (saving, seq) :: acc else acc)
      counts []
  in
  let sorted = List.sort (fun (a, s1) (b, s2) ->
      if a <> b then compare b a else compare s1 s2) scored in
  let rec take k = function
    | [] -> []
    | (_, seq) :: rest -> if k = 0 then [] else seq :: take (k - 1) rest
  in
  Array.of_list (take max_entries sorted)

let entries_of_program program = select_entries (collect_candidates program)
let index_bits ~nentries = max 1 (Bits.bits_needed (max 2 nentries))

let build program =
  let entries = entries_of_program program in
  let nentries = Array.length entries in
  let idx_bits = index_bits ~nentries in
  let index : (int list, int) Hashtbl.t = Hashtbl.create 512 in
  Array.iteri (fun i seq -> Hashtbl.replace index seq i) entries;
  let image, offsets, sizes =
    Scheme.build_blocks program (fun w ops ->
        let arr = Array.of_list (List.map Tepic.Encode.to_int ops) in
        let n = Array.length arr in
        let i = ref 0 in
        while !i < n do
          (* Longest dictionary match starting here. *)
          let matched = ref 0 in
          for len = max_seq_len downto 1 do
            if !matched = 0 && !i + len <= n then begin
              let seq = Array.to_list (Array.sub arr !i len) in
              if Hashtbl.mem index seq then matched := len
            end
          done;
          if !matched > 0 then begin
            let seq = Array.to_list (Array.sub arr !i !matched) in
            Bits.Writer.add_bit w true;
            Bits.Writer.add_bits w ~width:idx_bits (Hashtbl.find index seq);
            i := !i + !matched
          end
          else begin
            Bits.Writer.add_bit w false;
            Bits.Writer.add_bits w ~width:op_bits arr.(!i);
            incr i
          end
        done)
  in
  let op_counts =
    Array.map
      (fun b -> Tepic.Program.block_num_ops b)
      program.Tepic.Program.blocks
  in
  let decode_payload r i =
    let out = ref [] in
    let remaining = ref op_counts.(i) in
    while !remaining > 0 do
      if Bits.Reader.read_bit r then begin
        let idx = Bits.Reader.read_bits r ~width:idx_bits in
        if idx >= nentries then failwith "Dictionary: bad reference";
        List.iter
          (fun v -> out := Tepic.Encode.of_int v :: !out)
          entries.(idx);
        remaining := !remaining - List.length entries.(idx)
      end
      else begin
        out := Tepic.Encode.of_int (Bits.Reader.read_bits r ~width:op_bits) :: !out;
        decr remaining
      end
    done;
    List.rev !out
  in
  let table_bits =
    Array.fold_left (fun a seq -> a + (List.length seq * op_bits)) 0 entries
    (* per-entry length field *)
    + (nentries * Bits.bits_needed (max_seq_len + 1))
  in
  let max_entry_len =
    Array.fold_left (fun a seq -> max a (List.length seq)) 0 entries
  in
  {
    Scheme.name = "dict";
    image;
    code_bits = 8 * String.length image;
    table_bits;
    block_offset_bits = offsets;
    block_bits = sizes;
    frame = Scheme.no_frame;
    decoder =
      {
        dict_entries = nentries;
        max_code_bits = 1 + idx_bits;
        entry_bits = max_entry_len * op_bits;
        (* An indexed ROM, not a Huffman mux tree: no tree cost. *)
        transistors = 0;
      };
    books = [];
    (* Worst case per op: a literal token (flag + 40-bit image).  Best
       case: one reference token amortized over a max_seq_len-op entry. *)
    model =
      [
        Scheme.Fixed_bits
          {
            label = "dict-token";
            min_bits = (1 + idx_bits) / max_seq_len;
            max_bits = 1 + op_bits;
          };
      ];
    decode_payload;
    decode_block = Scheme.block_decoder ~image ~offsets decode_payload;
  }
