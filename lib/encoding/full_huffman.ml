let max_code_len = 20

let build program =
  let freq = Huffman.Freq.create () in
  Tepic.Program.iter_ops
    (fun op -> Huffman.Freq.add freq (Tepic.Encode.to_int op))
    program;
  let book =
    Huffman.Codebook.make ~max_len:max_code_len
      ~symbol_bits:(fun _ -> Tepic.Format_spec.op_bits)
      freq
  in
  let image, offsets, sizes =
    Scheme.build_blocks program (fun w ops ->
        List.iter
          (fun op -> Huffman.Codebook.write book w (Tepic.Encode.to_int op))
          ops)
  in
  let counts =
    Array.map
      (fun b -> Tepic.Program.block_num_ops b)
      program.Tepic.Program.blocks
  in
  let decode_payload r i =
    List.init counts.(i) (fun _ ->
        Tepic.Encode.of_int (Huffman.Codebook.read book r))
  in
  let stats = Huffman.Codebook.stats book in
  {
    Scheme.name = "full";
    image;
    code_bits = 8 * String.length image;
    table_bits = stats.Huffman.Codebook.table_bits;
    block_offset_bits = offsets;
    block_bits = sizes;
    frame = Scheme.no_frame;
    decoder =
      {
        dict_entries = stats.Huffman.Codebook.entries;
        max_code_bits = stats.Huffman.Codebook.max_code_len;
        entry_bits = stats.Huffman.Codebook.max_symbol_bits;
        transistors = Huffman.Codebook.decoder_transistors book;
      };
    books = [ ("full", book) ];
    model = [ Scheme.Book_codewords { book = "full"; max_per_op = 1 } ];
    decode_payload;
    decode_block = Scheme.block_decoder ~image ~offsets decode_payload;
  }
