let max_code_len = 13

(* Packed stream symbols carry their width so that, e.g., a 10-bit zero and
   a 13-bit zero are distinct dictionary entries. *)
let pack ~value ~width = value lor (width lsl 42)
let unpack sym = (sym land ((1 lsl 42) - 1), sym lsr 42)

let mk name nstreams assign =
  {
    Tepic.Field_stream.name;
    nstreams;
    stream_of_field =
      (fun f ->
        match f with
        | "T" | "S" | "OPT" | "OPCODE" -> 0
        | _ -> assign f);
  }

let sources = function "SRC1" | "SRC2" | "IMM" -> true | _ -> false
let dests = function "DEST" -> true | _ -> false

(* Figure 3's four-stream split: prefix / sources / middle / destination. *)
let classic =
  mk "stream" 4 (fun f ->
      if sources f then 1 else if dests f || f = "L1" || f = "PRED" then 3
      else 2)

(* Finer split that isolates the near-constant predicate field. *)
let fine =
  mk "stream_1" 5 (fun f ->
      if sources f then 1
      else if dests f then 2
      else if f = "PRED" || f = "L1" then 3
      else 4)

let two = mk "stream_2" 2 (fun _ -> 1)

let grouped_regs =
  mk "stream_3" 3 (fun f -> if sources f || dests f then 1 else 2)

let pred_in_prefix =
  mk "stream_4" 4 (fun f ->
      if f = "PRED" then 0 else if sources f then 1 else if dests f then 2
      else 3)

let per_field =
  mk "stream_5" 6 (fun f ->
      if f = "SRC1" then 1
      else if f = "SRC2" || f = "IMM" then 2
      else if dests f then 3
      else if f = "PRED" then 4
      else 5)

let configs =
  [
    ("stream", classic);
    ("stream_1", fine);
    ("stream_2", two);
    ("stream_3", grouped_regs);
    ("stream_4", pred_in_prefix);
    ("stream_5", per_field);
  ]

let () =
  List.iter (fun (_, c) -> Tepic.Field_stream.validate c) configs

let build ?(config = classic) program =
  Tepic.Field_stream.validate config;
  let ns = config.Tepic.Field_stream.nstreams in
  let freqs = Array.init ns (fun _ -> Huffman.Freq.create ()) in
  Tepic.Program.iter_ops
    (fun op ->
      Array.iteri
        (fun s (value, width) ->
          if width > 0 then Huffman.Freq.add freqs.(s) (pack ~value ~width))
        (Tepic.Field_stream.symbols config op))
    program;
  let books =
    Array.map
      (fun freq ->
        if Huffman.Freq.total freq = 0 then None
        else
          Some
            (Huffman.Codebook.make ~max_len:max_code_len
               ~symbol_bits:(fun sym -> snd (unpack sym))
               freq))
      freqs
  in
  let image, offsets, sizes =
    Scheme.build_blocks program (fun w ops ->
        List.iter
          (fun op ->
            Array.iteri
              (fun s (value, width) ->
                if width > 0 then
                  match books.(s) with
                  | Some book -> Huffman.Codebook.write book w (pack ~value ~width)
                  | None -> assert false)
              (Tepic.Field_stream.symbols config op))
          ops)
  in
  let counts =
    Array.map
      (fun b -> Tepic.Program.block_num_ops b)
      program.Tepic.Program.blocks
  in
  let decode_payload r i =
    List.init counts.(i) (fun _ ->
        let book0 =
          match books.(0) with Some b -> b | None -> assert false
        in
        let sym0 = Huffman.Codebook.read book0 r in
        let v0, w0 = unpack sym0 in
        let kind = Tepic.Field_stream.kind_of_stream0 config ~value:v0 ~width:w0 in
        let widths = Tepic.Field_stream.widths config kind in
        let values = Array.make ns 0 in
        values.(0) <- v0;
        for s = 1 to ns - 1 do
          if widths.(s) > 0 then begin
            let book =
              match books.(s) with Some b -> b | None -> assert false
            in
            let v, w = unpack (Huffman.Codebook.read book r) in
            if w <> widths.(s) then
              failwith "Stream_huffman: decoded symbol width mismatch";
            values.(s) <- v
          end
        done;
        Tepic.Field_stream.op_of_symbols config kind values)
  in
  let live_books =
    Array.to_list books |> List.filter_map (fun b -> b)
  in
  let stat b = Huffman.Codebook.stats b in
  let table_bits =
    List.fold_left (fun a b -> a + (stat b).Huffman.Codebook.table_bits) 0 live_books
  in
  {
    Scheme.name = config.Tepic.Field_stream.name;
    image;
    code_bits = 8 * String.length image;
    table_bits;
    block_offset_bits = offsets;
    block_bits = sizes;
    frame = Scheme.no_frame;
    decoder =
      {
        dict_entries =
          List.fold_left (fun a b -> a + (stat b).Huffman.Codebook.entries) 0 live_books;
        max_code_bits =
          List.fold_left (fun a b -> max a (stat b).Huffman.Codebook.max_code_len) 0 live_books;
        entry_bits =
          List.fold_left
            (fun a b -> max a (stat b).Huffman.Codebook.max_symbol_bits)
            0 live_books;
        transistors =
          List.fold_left
            (fun a b -> a + Huffman.Codebook.decoder_transistors b)
            0 live_books;
      };
    books =
      (let named = ref [] in
       Array.iteri
         (fun s b ->
           match b with
           | Some book ->
               named := (Printf.sprintf "stream%d" s, book) :: !named
           | None -> ())
         books;
       List.rev !named);
    (* One codeword per live stream per op (a zero-width field reads
       nothing, but its stream may still serve other formats). *)
    model =
      (let srcs = ref [] in
       Array.iteri
         (fun s b ->
           match b with
           | Some _ ->
               srcs :=
                 Scheme.Book_codewords
                   { book = Printf.sprintf "stream%d" s; max_per_op = 1 }
                 :: !srcs
           | None -> ())
         books;
       List.rev !srcs);
    decode_payload;
    decode_block = Scheme.block_decoder ~image ~offsets decode_payload;
  }
