type decoder_info = {
  dict_entries : int;
  max_code_bits : int;
  entry_bits : int;
  transistors : int;
}

type t = {
  name : string;
  image : string;
  code_bits : int;
  table_bits : int;
  block_offset_bits : int array;
  block_bits : int array;
  decoder : decoder_info;
  books : (string * Huffman.Codebook.t) list;
  decode_block : int -> Tepic.Op.t list;
}

let ratio t ~baseline_bits =
  if baseline_bits <= 0 then invalid_arg "Scheme.ratio";
  float_of_int t.code_bits /. float_of_int baseline_bits

let verify t program =
  let n = Tepic.Program.num_blocks program in
  for i = 0 to n - 1 do
    let original = Tepic.Program.block_ops (Tepic.Program.block program i) in
    let decoded = t.decode_block i in
    if List.length original <> List.length decoded then
      failwith
        (Printf.sprintf "%s: block %d decodes to %d ops, expected %d" t.name i
           (List.length decoded) (List.length original));
    List.iteri
      (fun j (a, b) ->
        if not (Tepic.Op.equal a b) then
          failwith
            (Printf.sprintf "%s: block %d op %d mismatch: %s vs %s" t.name i j
               (Tepic.Op.to_string a) (Tepic.Op.to_string b)))
      (List.combine original decoded)
  done

let build_blocks program encode_block =
  let n = Tepic.Program.num_blocks program in
  let w = Bits.Writer.create ~initial_bytes:4096 () in
  let offsets = Array.make n 0 in
  let sizes = Array.make n 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- Bits.Writer.length w;
    let ops = Tepic.Program.block_ops (Tepic.Program.block program i) in
    encode_block w ops;
    sizes.(i) <- Bits.Writer.length w - offsets.(i);
    ignore (Bits.Writer.align_byte w)
  done;
  (Bits.Writer.contents w, offsets, sizes)
