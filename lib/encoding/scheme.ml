type decoder_info = {
  dict_entries : int;
  max_code_bits : int;
  entry_bits : int;
  transistors : int;
}

type protection = Unprotected | Crc8 | Crc16

let guard_bits_of = function Unprotected -> 0 | Crc8 -> 8 | Crc16 -> 16

let poly_of = function
  | Unprotected -> 0
  | Crc8 -> Bits.Crc.crc8_poly
  | Crc16 -> Bits.Crc.crc16_poly

let protection_name = function
  | Unprotected -> "none"
  | Crc8 -> "crc8"
  | Crc16 -> "crc16"

let protection_of_name = function
  | "none" -> Some Unprotected
  | "crc8" -> Some Crc8
  | "crc16" -> Some Crc16
  | _ -> None

type frame = {
  protection : protection;
  len_bits : int;
  guard_bits : int;
  protection_bits : int;
}

let no_frame =
  { protection = Unprotected; len_bits = 0; guard_bits = 0; protection_bits = 0 }

(* Declarative decode model: what one decoded op costs on the wire, stated
   in terms of the scheme's *published* artifacts.  The certification pass
   (Cccs_analysis.Certify) consumes this — each [Book_codewords] source is
   proved against the named codebook's decode automaton, and the summed
   per-op maxima give the certified worst-case block size — so a new
   scheme (CPack, BDI, ...) is certified for free once it states its
   model. *)
type code_source =
  | Fixed_bits of { label : string; min_bits : int; max_bits : int }
  | Book_codewords of { book : string; max_per_op : int }

type t = {
  name : string;
  image : string;
  code_bits : int;
  table_bits : int;
  block_offset_bits : int array;
  block_bits : int array;
  frame : frame;
  decoder : decoder_info;
  books : (string * Huffman.Codebook.t) list;
  model : code_source list;
  decode_payload : Bits.Reader.t -> int -> Tepic.Op.t list;
  decode_block : int -> Tepic.Op.t list;
}

let ratio t ~baseline_bits =
  if baseline_bits <= 0 then invalid_arg "Scheme.ratio";
  float_of_int t.code_bits /. float_of_int baseline_bits

type decode_error = {
  scheme : string;
  block : int;
  bit : int;
  reason : string;
}

let pp_decode_error ppf e =
  Format.fprintf ppf "%s: block %d: bit %d: %s" e.scheme e.block e.bit e.reason

let decode_error_to_string e = Format.asprintf "%a" pp_decode_error e

(* The framed payload excludes the length field and the guard word; for an
   unprotected scheme it is the whole block. *)
let payload_bits t i =
  t.block_bits.(i) - t.frame.len_bits - t.frame.guard_bits

let exn_message = function
  | Invalid_argument m | Failure m -> m
  | Not_found -> "lookup failed (Not_found)"
  | exn -> Printexc.to_string exn

(* The verifying decode of one block with the reader already positioned on
   the block's first bit.  Factored out of [decode_block_checked] so the
   chunked parallel decoder (Cccs.Par_decode) walks blocks back-to-back
   through the exact same checks — a corrupt stream yields the same typed
   error, at the same bit position, whichever path found it. *)
let decode_block_checked_at t r i =
  let offset = Bits.Reader.pos r in
  let fail reason =
    Error { scheme = t.name; block = i; bit = Bits.Reader.pos r; reason }
  in
  let decode_and_check ~expect_consumed =
    let start = Bits.Reader.pos r in
    match t.decode_payload r i with
    | exception exn -> fail (exn_message exn)
    | ops ->
        let consumed = Bits.Reader.pos r - start in
        if consumed <> expect_consumed then
          fail
            (Printf.sprintf "consumed %d bits, block frame holds %d" consumed
               expect_consumed)
        else Ok ops
  in
  match t.frame.protection with
  | Unprotected -> decode_and_check ~expect_consumed:t.block_bits.(i)
  | p -> (
      let f = t.frame in
      let expect_payload = payload_bits t i in
      match Bits.Reader.read_bits_opt r ~width:f.len_bits with
      | None -> fail "length field truncated"
      | Some plen when plen <> expect_payload ->
          fail
            (Printf.sprintf "length field reads %d, frame geometry implies %d"
               plen expect_payload)
      | Some plen -> (
          match
            Bits.Crc.of_reader ~width:f.guard_bits ~poly:(poly_of p) r
              ~nbits:plen
          with
          | exception exn -> fail (exn_message exn)
          | crc -> (
              match Bits.Reader.read_bits_opt r ~width:f.guard_bits with
              | None -> fail "guard word truncated"
              | Some guard when guard <> crc ->
                  fail
                    (Printf.sprintf
                       "guard word %#x disagrees with payload %s %#x" guard
                       (protection_name p) crc)
              | Some _ -> (
                  Bits.Reader.seek r offset;
                  (* decode_payload re-reads the length field. *)
                  match decode_and_check ~expect_consumed:(f.len_bits + plen) with
                  | Ok ops ->
                      (* Step over the already-verified guard word so the
                         cursor rests past the whole framed block — the
                         invariant the back-to-back chunk walk relies on. *)
                      Bits.Reader.advance r f.guard_bits;
                      Ok ops
                  | Error _ as e -> e))))

let decode_block_checked ?image t i =
  let image = match image with Some s -> s | None -> t.image in
  if i < 0 || i >= Array.length t.block_offset_bits then
    invalid_arg (Printf.sprintf "Scheme.decode_block_checked: block %d" i)
  else begin
    let r = Bits.Reader.of_string image in
    match Bits.Reader.seek r t.block_offset_bits.(i) with
    | exception exn ->
        Error
          {
            scheme = t.name;
            block = i;
            bit = Bits.Reader.pos r;
            reason = exn_message exn;
          }
    | () -> decode_block_checked_at t r i
  end

let verify t program =
  let n = Tepic.Program.num_blocks program in
  for i = 0 to n - 1 do
    let original = Tepic.Program.block_ops (Tepic.Program.block program i) in
    let decoded = t.decode_block i in
    if List.length original <> List.length decoded then
      failwith
        (Printf.sprintf "%s: block %d decodes to %d ops, expected %d" t.name i
           (List.length decoded) (List.length original));
    List.iteri
      (fun j (a, b) ->
        if not (Tepic.Op.equal a b) then
          failwith
            (Printf.sprintf "%s: block %d op %d mismatch: %s vs %s" t.name i j
               (Tepic.Op.to_string a) (Tepic.Op.to_string b)))
      (List.combine original decoded);
    (* Bit accounting: a decoder that consumes more or fewer bits than the
       block holds can still return the right ops (over-reading into the
       next block, or resynchronizing by luck); catch it here. *)
    let r = Bits.Reader.of_string t.image in
    Bits.Reader.seek r t.block_offset_bits.(i);
    ignore (t.decode_payload r i);
    let consumed = Bits.Reader.pos r - t.block_offset_bits.(i) in
    let expect = t.block_bits.(i) - t.frame.guard_bits in
    if consumed <> expect then
      failwith
        (Printf.sprintf
           "%s: block %d decode consumed %d bits, frame holds %d" t.name i
           consumed expect)
  done

let build_blocks program encode_block =
  let n = Tepic.Program.num_blocks program in
  let w = Bits.Writer.create ~initial_bytes:4096 () in
  let offsets = Array.make n 0 in
  let sizes = Array.make n 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- Bits.Writer.length w;
    let ops = Tepic.Program.block_ops (Tepic.Program.block program i) in
    encode_block w ops;
    sizes.(i) <- Bits.Writer.length w - offsets.(i);
    ignore (Bits.Writer.align_byte w)
  done;
  (Bits.Writer.contents w, offsets, sizes)

(* [with_image image offsets sizes decode_payload] — the standard decode
   entry point every builder derives: position a fresh reader on block [i]
   and run the scheme's payload decoder. *)
let block_decoder ~image ~offsets decode_payload i =
  let r = Bits.Reader.of_string image in
  Bits.Reader.seek r offsets.(i);
  decode_payload r i

let protect p t =
  match p with
  | Unprotected -> t
  | _ ->
      if t.frame.protection <> Unprotected then
        invalid_arg "Scheme.protect: scheme is already protected";
      let gbits = guard_bits_of p and poly = poly_of p in
      let n = Array.length t.block_bits in
      let max_payload = Array.fold_left max 0 t.block_bits in
      let len_bits = max 1 (Bits.bits_needed (max_payload + 1)) in
      let w = Bits.Writer.create ~initial_bytes:(String.length t.image * 2) () in
      let offsets = Array.make n 0 in
      let sizes = Array.make n 0 in
      let src = Bits.Reader.of_string t.image in
      for i = 0 to n - 1 do
        offsets.(i) <- Bits.Writer.length w;
        let plen = t.block_bits.(i) in
        Bits.Writer.add_bits w ~width:len_bits plen;
        Bits.Reader.seek src t.block_offset_bits.(i);
        let crc = ref 0 in
        for _ = 1 to plen do
          let b = Bits.Reader.read_bit src in
          crc := Bits.Crc.update ~width:gbits ~poly !crc b;
          Bits.Writer.add_bit w b
        done;
        Bits.Writer.add_bits w ~width:gbits !crc;
        sizes.(i) <- Bits.Writer.length w - offsets.(i);
        ignore (Bits.Writer.align_byte w)
      done;
      let image = Bits.Writer.contents w in
      let len_bits' = len_bits in
      let decode_payload r i =
        (* Skip the length field; the guard word after the payload is left
           unread (decode_block_checked is the verifying path). *)
        ignore (Bits.Reader.read_bits r ~width:len_bits');
        t.decode_payload r i
      in
      {
        t with
        image;
        code_bits = 8 * String.length image;
        block_offset_bits = offsets;
        block_bits = sizes;
        frame =
          {
            protection = p;
            len_bits;
            guard_bits = gbits;
            protection_bits = n * (len_bits + gbits);
          };
        decode_payload;
        decode_block = block_decoder ~image ~offsets decode_payload;
      }
