(** Whole-program execution of scheduled TEPIC code — the YULA-emulator
    substitute.  Produces the block-granularity instruction trace the cache
    study replays. *)

type stop_reason =
  | Fell_through  (** control fell past the last block *)
  | Halted  (** RET with a negative link value *)
  | Budget_exhausted  (** [max_blocks] visits reached *)

type result = {
  trace : Trace.t;
  machine : Machine.t;
  stop : stop_reason;
}

(** [run ?max_blocks ?mem_size ?obs program] executes from the entry block.
    [max_blocks] (default 2,000,000) bounds the number of block visits;
    [mem_size] (default 65536 words) sizes data memory.  [obs] receives a
    wall-clock span over the whole execution plus [exec.*] gauges (dynamic
    ops, MOPs, block visits). *)
val run :
  ?max_blocks:int ->
  ?mem_size:int ->
  ?obs:Cccs_obs.Sink.t ->
  Tepic.Program.t ->
  result
