type stop_reason = Fell_through | Halted | Budget_exhausted

type result = {
  trace : Trace.t;
  machine : Machine.t;
  stop : stop_reason;
}

let run ?(max_blocks = 2_000_000) ?(mem_size = 65536) ?obs program =
  Cccs_obs.Sink.timed ?obs ~stage:Cccs_obs.Event.Simulate
    ~label:("execute:" ^ program.Tepic.Program.name)
  @@ fun () ->
  let machine = Machine.create ~mem_size () in
  let trace = Trace.create () in
  let n = Tepic.Program.num_blocks program in
  let stop = ref None in
  let pc = ref program.Tepic.Program.entry in
  let visits = ref 0 in
  while !stop = None do
    if !visits >= max_blocks then stop := Some Budget_exhausted
    else begin
      incr visits;
      let b = Tepic.Program.block program !pc in
      Trace.add trace !pc;
      Trace.record_ops trace
        ~ops:(Tepic.Program.block_num_ops b)
        ~mops:(Tepic.Program.block_num_mops b);
      let control = ref Machine.Next in
      List.iter
        (fun mop ->
          let c =
            Machine.exec_mop machine ~block_id:!pc (Tepic.Mop.ops mop)
          in
          match c with Machine.Next -> () | c -> control := c)
        b.Tepic.Program.mops;
      match !control with
      | Machine.Next ->
          if !pc + 1 >= n then stop := Some Fell_through else incr pc
      | Machine.Goto t | Machine.Call_to { target = t } -> pc := t
      | Machine.Return_to t ->
          if t >= n then stop := Some Fell_through else pc := t
      | Machine.Halt -> stop := Some Halted
    end
  done;
  let stop = match !stop with Some s -> s | None -> assert false in
  Cccs_obs.Sink.gauge ?obs "exec.block_visits"
    (float_of_int (Trace.length trace));
  Cccs_obs.Sink.gauge ?obs "exec.dyn_ops" (float_of_int (Trace.total_ops trace));
  Cccs_obs.Sink.gauge ?obs "exec.dyn_mops"
    (float_of_int (Trace.total_mops trace));
  { trace; machine; stop }
