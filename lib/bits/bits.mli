(** Bit-level buffers used throughout the compression pipeline.

    All multi-bit fields are written and read MSB-first, matching the byte
    layout a ROM programmer would use.  A {!Writer.t} is a growable bit
    buffer; a {!Reader.t} is a cursor over an immutable bitstring.  Positions
    are expressed in bits from the start of the buffer. *)

module Writer : sig
  type t

  val create : ?initial_bytes:int -> unit -> t

  (** [length w] is the number of bits written so far. *)
  val length : t -> int

  (** [add_bit w b] appends a single bit. *)
  val add_bit : t -> bool -> unit

  (** [add_bits w ~width v] appends the [width] low bits of [v], MSB first.
      Raises [Invalid_argument] if [width < 0], [width > 62] or [v] does not
      fit in [width] bits. *)
  val add_bits : t -> width:int -> int -> unit

  (** [add_string w s] appends every bit of the byte string [s]. *)
  val add_string : t -> string -> unit

  (** [align_byte w] pads with zero bits to the next byte boundary and
      returns the number of padding bits added. *)
  val align_byte : t -> int

  (** [contents w] freezes the buffer into a byte string, zero-padding the
      final partial byte. *)
  val contents : t -> string
end

module Reader : sig
  type t

  (** [of_string s] reads from the full byte string [s]. *)
  val of_string : string -> t

  (** [pos r] is the current bit offset. *)
  val pos : t -> int

  (** [length r] is the total number of bits available. *)
  val length : t -> int

  (** [remaining r] is [length r - pos r]. *)
  val remaining : t -> int

  (** [seek r bit] repositions the cursor.  Raises [Invalid_argument] when
      out of range; the message carries the target bit and stream length. *)
  val seek : t -> int -> unit

  (** [read_bit r] consumes one bit.  Raises [Invalid_argument] at end of
      stream; the message carries the cursor position and stream length
      (e.g. ["Bits.Reader.read_bit: exhausted at bit 412/408"]). *)
  val read_bit : t -> bool

  (** [read_bits r ~width] consumes [width] bits, MSB first. *)
  val read_bits : t -> width:int -> int

  (** [read_bit_opt r] — total variant of {!read_bit}: [None] instead of
      raising at end of stream, with the cursor left in place. *)
  val read_bit_opt : t -> bool option

  (** [read_bits_opt r ~width] — total variant of {!read_bits}: [None] on a
      bad width or fewer than [width] bits remaining (cursor unchanged in
      the too-short case). *)
  val read_bits_opt : t -> width:int -> int option
end

(** Bitwise CRCs, MSB first, zero initial value, no final xor — the guard
    words of the protected block framing and protected decode tables.  These
    generator polynomials detect every single-bit error and every error
    burst shorter than the CRC register. *)
module Crc : sig
  val crc8_poly : int  (** 0x07 — x^8 + x^2 + x + 1 *)

  val crc16_poly : int  (** 0x1021 — CCITT, x^16 + x^12 + x^5 + 1 *)

  (** [update ~width ~poly crc bit] — shift one bit into the register. *)
  val update : width:int -> poly:int -> int -> bool -> int

  (** [of_reader ~width ~poly r ~nbits] — CRC of the next [nbits] bits,
      consuming them.  Raises like {!Reader.read_bit} on a short stream. *)
  val of_reader : width:int -> poly:int -> Reader.t -> nbits:int -> int

  (** [of_string ~width ~poly s] — CRC over a whole byte string. *)
  val of_string : width:int -> poly:int -> string -> int
end

(** [flip_bits s bits] — copy of the byte string [s] with each listed bit
    position (MSB-first, matching {!Reader}) inverted.  The fault-injection
    surfaces are built with this.  Raises [Invalid_argument] if a position
    lies outside the string. *)
val flip_bits : string -> int list -> string

(** [popcount v] is the number of set bits in [v] (which must be
    non-negative). *)
val popcount : int -> int

(** [bits_needed n] is the minimum field width able to represent every value
    in [0, n-1]; by convention [bits_needed 0 = 0] and [bits_needed 1 = 1]. *)
val bits_needed : int -> int

(** [flips_between a b] is the Hamming distance between two ints, the model
    used for memory-bus transition counting. *)
val flips_between : int -> int -> int
