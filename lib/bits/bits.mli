(** Bit-level buffers used throughout the compression pipeline.

    All multi-bit fields are written and read MSB-first, matching the byte
    layout a ROM programmer would use.  A {!Writer.t} is a growable bit
    buffer; a {!Reader.t} is a cursor over an immutable bitstring.  Positions
    are expressed in bits from the start of the buffer. *)

module Writer : sig
  type t

  val create : ?initial_bytes:int -> unit -> t

  (** [length w] is the number of bits written so far. *)
  val length : t -> int

  (** [add_bit w b] appends a single bit. *)
  val add_bit : t -> bool -> unit

  (** [add_bits w ~width v] appends the [width] low bits of [v], MSB first.
      The field is OR-ed into the buffer a byte at a time (at most 8
      iterations for the widest legal field) rather than bit by bit.
      Raises [Invalid_argument] if [width < 0], [width > 62] or [v] does not
      fit in [width] bits. *)
  val add_bits : t -> width:int -> int -> unit

  (** [add_string w s] appends every bit of the byte string [s].  When the
      writer is byte-aligned this is a single [Bytes.blit_string]. *)
  val add_string : t -> string -> unit

  (** [align_byte w] pads with zero bits to the next byte boundary and
      returns the number of padding bits added. *)
  val align_byte : t -> int

  (** [contents w] freezes the buffer into a byte string, zero-padding the
      final partial byte. *)
  val contents : t -> string
end

module Reader : sig
  type t

  (** [of_string s] reads from the full byte string [s]. *)
  val of_string : string -> t

  (** [pos r] is the current bit offset. *)
  val pos : t -> int

  (** [length r] is the total number of bits available. *)
  val length : t -> int

  (** [remaining r] is [length r - pos r]. *)
  val remaining : t -> int

  (** [seek r bit] repositions the cursor.  Raises [Invalid_argument] when
      out of range; the message carries the target bit and stream length. *)
  val seek : t -> int -> unit

  (** [advance r n] moves the cursor [n] bits forward.  Raises
      [Invalid_argument] if [n < 0] or the move would pass the end of the
      stream.  [peek_bits] + [advance] is the word-wise decode idiom:
      inspect up to 56 bits in one load, then consume exactly the bits a
      match used. *)
  val advance : t -> int -> unit

  (** [align_byte r] advances the cursor to the next byte boundary (or the
      end of the stream, whichever is first) and returns the number of
      padding bits skipped.  The reader-side mirror of
      {!Writer.align_byte}, used when decoding byte-aligned block layouts
      back-to-back. *)
  val align_byte : t -> int

  (** [read_bit r] consumes one bit.  Raises [Invalid_argument] at end of
      stream; the message carries the cursor position and stream length
      (e.g. ["Bits.Reader.read_bit: exhausted at bit 412/408"]). *)
  val read_bit : t -> bool

  (** [peek_bits r ~width] — the next [width] bits (MSB first) without
      moving the cursor, read in one multi-byte load.  Bits past the end of
      the stream read as zero, so near the end the result equals the
      remaining bits left-shifted into the high positions:
      [peek_bits r ~width = read_bits r ~width:(remaining r) lsl
      (width - remaining r)].  [width] must lie in [0, 56] (the widest
      window whose worst-case byte span, 7 leading skipped bits plus the
      field, still fits an OCaml int). *)
  val peek_bits : t -> width:int -> int

  (** [unsafe_peek_bits r ~width] — {!peek_bits} without the width
      validation: defined only for [width] in [0, 56].  For decode hot
      loops whose caller already guarantees the bound (e.g. a Huffman
      code's [max_len]). *)
  val unsafe_peek_bits : t -> width:int -> int

  (** [unsafe_advance r n] — {!advance} without the bounds validation:
      defined only for [0 <= n <= remaining r].  Pairs with
      {!unsafe_peek_bits} when the caller has already checked
      [remaining]. *)
  val unsafe_advance : t -> int -> unit

  (** [read_bits r ~width] consumes [width] bits, MSB first.  Widths up to
      56 with enough bits remaining go through the [peek_bits] word load;
      wider or tail reads fall back to the bit loop (and raise exactly like
      {!read_bit} on a short stream). *)
  val read_bits : t -> width:int -> int

  (** [read_bit_opt r] — total variant of {!read_bit}: [None] instead of
      raising at end of stream, with the cursor left in place. *)
  val read_bit_opt : t -> bool option

  (** [read_bits_opt r ~width] — total variant of {!read_bits}: [None] on a
      bad width or fewer than [width] bits remaining (cursor unchanged in
      the too-short case). *)
  val read_bits_opt : t -> width:int -> int option
end

(** CRCs, MSB first, zero initial value, no final xor — the guard words of
    the protected block framing and protected decode tables.  These
    generator polynomials detect every single-bit error and every error
    burst shorter than the CRC register.

    The bit-at-a-time {!update} is the defining register; {!of_string} and
    {!of_reader} run the two built-in polynomials through 256-entry byte
    tables derived from it (8× fewer register steps), falling back to the
    bitwise register for other polynomials, partial bytes and unaligned
    prefixes.  Both paths compute identical values — the differential
    property is part of the test suite. *)
module Crc : sig
  val crc8_poly : int  (** 0x07 — x^8 + x^2 + x + 1 *)

  val crc16_poly : int  (** 0x1021 — CCITT, x^16 + x^12 + x^5 + 1 *)

  (** [update ~width ~poly crc bit] — shift one bit into the register.
      The bitwise reference; kept for partial bits and as the differential
      oracle for the table path. *)
  val update : width:int -> poly:int -> int -> bool -> int

  (** [update_byte ~width ~poly crc b] — eight {!update} steps, feeding the
      byte [b] MSB first. *)
  val update_byte : width:int -> poly:int -> int -> int -> int

  (** [of_reader ~width ~poly r ~nbits] — CRC of the next [nbits] bits,
      consuming them.  Table-driven over the byte-aligned middle when the
      polynomial is one of the two built-ins and the stream holds [nbits]
      bits; raises like {!Reader.read_bit} on a short stream. *)
  val of_reader : width:int -> poly:int -> Reader.t -> nbits:int -> int

  (** [of_string ~width ~poly s] — CRC over a whole byte string
      (table-driven for the built-in polynomials). *)
  val of_string : width:int -> poly:int -> string -> int
end

(** [flip_bits s bits] — copy of the byte string [s] with each listed bit
    position (MSB-first, matching {!Reader}) inverted.  The fault-injection
    surfaces are built with this.  Raises [Invalid_argument] if a position
    lies outside the string. *)
val flip_bits : string -> int list -> string

(** [popcount v] is the number of set bits in [v] (which must be
    non-negative). *)
val popcount : int -> int

(** [bits_needed n] is the minimum field width able to represent every value
    in [0, n-1]; by convention [bits_needed 0 = 0] and [bits_needed 1 = 1]. *)
val bits_needed : int -> int

(** [flips_between a b] is the Hamming distance between two ints, the model
    used for memory-bus transition counting. *)
val flips_between : int -> int -> int
