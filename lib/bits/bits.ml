module Writer = struct
  type t = {
    mutable bytes : Bytes.t;
    mutable nbits : int;
  }

  let create ?(initial_bytes = 64) () =
    { bytes = Bytes.make (max 1 initial_bytes) '\000'; nbits = 0 }

  let length w = w.nbits

  let ensure w extra_bits =
    let needed = (w.nbits + extra_bits + 7) / 8 in
    let cap = Bytes.length w.bytes in
    if needed > cap then begin
      let cap' = max needed (2 * cap) in
      let b = Bytes.make cap' '\000' in
      Bytes.blit w.bytes 0 b 0 cap;
      w.bytes <- b
    end

  let add_bit w b =
    ensure w 1;
    if b then begin
      let byte = w.nbits lsr 3 and off = w.nbits land 7 in
      let v = Char.code (Bytes.get w.bytes byte) in
      Bytes.set w.bytes byte (Char.chr (v lor (0x80 lsr off)))
    end;
    w.nbits <- w.nbits + 1

  (* Word-wise append: every byte past [nbits] is zero (create/ensure make
     fresh bytes and add_bit only ever sets the current bit), so a field can
     be OR-ed into the buffer a byte at a time instead of bit by bit. *)
  let add_bits w ~width v =
    if width < 0 || width > 62 then
      invalid_arg "Bits.Writer.add_bits: width out of range";
    if v < 0 || (width < 62 && v lsr width <> 0) then
      invalid_arg "Bits.Writer.add_bits: value does not fit width";
    if width > 0 then begin
      ensure w width;
      let bytes = w.bytes in
      let pos = ref w.nbits and left = ref width in
      while !left > 0 do
        let byte = !pos lsr 3 and off = !pos land 7 in
        let take = min (8 - off) !left in
        let chunk = (v lsr (!left - take)) land ((1 lsl take) - 1) in
        let cur = Char.code (Bytes.unsafe_get bytes byte) in
        Bytes.unsafe_set bytes byte
          (Char.unsafe_chr (cur lor (chunk lsl (8 - off - take))));
        pos := !pos + take;
        left := !left - take
      done;
      w.nbits <- w.nbits + width
    end

  let add_string w s =
    let n = String.length s in
    if n > 0 then
      if w.nbits land 7 = 0 then begin
        (* Byte-aligned: the whole string lands on byte boundaries. *)
        ensure w (8 * n);
        Bytes.blit_string s 0 w.bytes (w.nbits lsr 3) n;
        w.nbits <- w.nbits + (8 * n)
      end
      else String.iter (fun c -> add_bits w ~width:8 (Char.code c)) s

  let align_byte w =
    let pad = (8 - (w.nbits land 7)) land 7 in
    for _ = 1 to pad do
      add_bit w false
    done;
    pad

  let contents w = Bytes.sub_string w.bytes 0 ((w.nbits + 7) / 8)
end

module Reader = struct
  type t = {
    data : string;
    nbits : int;
    mutable cursor : int;
  }

  let of_string s = { data = s; nbits = 8 * String.length s; cursor = 0 }
  let pos r = r.cursor
  let length r = r.nbits
  let remaining r = r.nbits - r.cursor

  let seek r bit =
    if bit < 0 || bit > r.nbits then
      invalid_arg
        (Printf.sprintf "Bits.Reader.seek: bit %d outside stream of %d bits"
           bit r.nbits);
    r.cursor <- bit

  let advance r n =
    if n < 0 || r.cursor + n > r.nbits then
      invalid_arg
        (Printf.sprintf
           "Bits.Reader.advance: %d bits from bit %d/%d out of range" n
           r.cursor r.nbits);
    r.cursor <- r.cursor + n

  (* Byte-aligned block layouts (Scheme.build_blocks) pad each block to a
     byte boundary; a decoder walking blocks back-to-back skips the padding
     with this instead of recomputing offsets. *)
  let align_byte r =
    let pad = (8 - (r.cursor land 7)) land 7 in
    let pad = min pad (r.nbits - r.cursor) in
    r.cursor <- r.cursor + pad;
    pad

  let read_bit r =
    if r.cursor >= r.nbits then
      invalid_arg
        (Printf.sprintf "Bits.Reader.read_bit: exhausted at bit %d/%d"
           r.cursor r.nbits);
    let byte = r.cursor lsr 3 and off = r.cursor land 7 in
    r.cursor <- r.cursor + 1;
    Char.code r.data.[byte] land (0x80 lsr off) <> 0

  (* One multi-byte load instead of [width] single-bit reads.  The first
     byte is masked down to its unconsumed low bits, so at most
     (7 + 56 + 7) / 8 = 8 partial bytes accumulate — 57 significant bits,
     inside OCaml's 63-bit int.

     The hot entry [unsafe_peek_bits] is deliberately straight-line: the
     classic (non-flambda) compiler never inlines a function containing a
     loop, and Huffman decode peeks at most max_len <= 20 bits (2-4
     bytes), so the unrolled loads below are the path that must inline
     into the decode loop.  Wide peeks and peeks running past the end of
     the stream take the loop in [peek_slow]. *)
  let peek_slow r ~width =
    let data = r.data in
    let len = String.length data in
    let byte = r.cursor lsr 3 and off = r.cursor land 7 in
    let m = (off + width + 7) lsr 3 in
    let v =
      ref
        (if byte < len then
           Char.code (String.unsafe_get data byte) land (0xff lsr off)
         else 0)
    in
    for i = 1 to m - 1 do
      let b =
        if byte + i < len then Char.code (String.unsafe_get data (byte + i))
        else 0
      in
      v := (!v lsl 8) lor b
    done;
    !v lsr ((8 * m) - off - width)

  let[@inline] unsafe_peek_bits r ~width =
    if width = 0 then 0
    else begin
      let data = r.data in
      let byte = r.cursor lsr 3 and off = r.cursor land 7 in
      let m = (off + width + 7) lsr 3 in
      if m <= 4 && byte + m <= String.length data then begin
        let v0 = Char.code (String.unsafe_get data byte) land (0xff lsr off) in
        let v =
          if m = 1 then v0
          else if m = 2 then
            (v0 lsl 8) lor Char.code (String.unsafe_get data (byte + 1))
          else if m = 3 then
            (v0 lsl 16)
            lor (Char.code (String.unsafe_get data (byte + 1)) lsl 8)
            lor Char.code (String.unsafe_get data (byte + 2))
          else
            (v0 lsl 24)
            lor (Char.code (String.unsafe_get data (byte + 1)) lsl 16)
            lor (Char.code (String.unsafe_get data (byte + 2)) lsl 8)
            lor Char.code (String.unsafe_get data (byte + 3))
        in
        v lsr ((8 * m) - off - width)
      end
      else peek_slow r ~width
    end

  let peek_bits r ~width =
    if width < 0 || width > 56 then
      invalid_arg
        (Printf.sprintf "Bits.Reader.peek_bits: width %d out of range" width);
    unsafe_peek_bits r ~width

  let[@inline] unsafe_advance r n = r.cursor <- r.cursor + n

  let read_bits r ~width =
    if width < 0 || width > 62 then
      invalid_arg
        (Printf.sprintf
           "Bits.Reader.read_bits: width %d out of range at bit %d/%d" width
           r.cursor r.nbits);
    if width <= 56 && r.nbits - r.cursor >= width then begin
      let v = unsafe_peek_bits r ~width in
      r.cursor <- r.cursor + width;
      v
    end
    else begin
      let v = ref 0 in
      for _ = 1 to width do
        v := (!v lsl 1) lor (if read_bit r then 1 else 0)
      done;
      !v
    end

  let read_bit_opt r = if r.cursor >= r.nbits then None else Some (read_bit r)

  let read_bits_opt r ~width =
    if width < 0 || width > 62 then None
    else if r.nbits - r.cursor < width then None
    else Some (read_bits r ~width)
end

(* Bitwise CRCs, MSB-first, zero initial value and no final xor — the guard
   words of the protected block framing (Scheme.protect) and of protected
   decode tables.  Any CRC with these generator polynomials detects every
   single-bit error and every burst shorter than the register.

   The bit-at-a-time [update] is the definition; whole-byte paths go through
   256-entry tables derived from it (test_bits carries the differential
   property).  The tables are built eagerly at module initialization so no
   lazy state is ever forced from a worker domain. *)
module Crc = struct
  let crc8_poly = 0x07 (* x^8 + x^2 + x + 1 *)
  let crc16_poly = 0x1021 (* CCITT: x^16 + x^12 + x^5 + 1 *)

  let update ~width ~poly crc bit =
    let top = 1 lsl (width - 1) in
    let mask = (1 lsl width) - 1 in
    let crc = if bit then crc lxor top else crc in
    let crc = crc lsl 1 in
    let crc = if crc land (1 lsl width) <> 0 then crc lxor poly else crc in
    crc land mask

  let update_byte ~width ~poly crc b =
    let crc = ref crc in
    for i = 7 downto 0 do
      crc := update ~width ~poly !crc ((b lsr i) land 1 = 1)
    done;
    !crc

  let make_table ~width ~poly = Array.init 256 (update_byte ~width ~poly 0)
  let crc8_table = make_table ~width:8 ~poly:crc8_poly
  let crc16_table = make_table ~width:16 ~poly:crc16_poly

  let table_for ~width ~poly =
    if width = 8 && poly = crc8_poly then Some crc8_table
    else if width = 16 && poly = crc16_poly then Some crc16_table
    else None

  (* The standard MSB-first byte step: shift the register one byte and fold
     the outgoing byte (xor incoming data) back in through the table. *)
  let step_byte ~width tbl crc b =
    if width = 8 then Array.unsafe_get tbl (crc lxor b)
    else
      ((crc lsl 8) lxor Array.unsafe_get tbl (((crc lsr (width - 8)) lxor b) land 0xff))
      land ((1 lsl width) - 1)

  let of_reader ~width ~poly r ~nbits =
    match table_for ~width ~poly with
    | Some tbl when nbits > 8 && Reader.remaining r >= nbits ->
        let crc = ref 0 in
        let left = ref nbits in
        (* Align to a byte boundary bit by bit, then run the byte table over
           the aligned middle, then finish the trailing partial byte. *)
        while Reader.pos r land 7 <> 0 && !left > 0 do
          crc := update ~width ~poly !crc (Reader.read_bit r);
          decr left
        done;
        let whole = !left lsr 3 in
        if whole > 0 then begin
          let start = Reader.pos r lsr 3 in
          let data = r.Reader.data in
          for i = start to start + whole - 1 do
            crc := step_byte ~width tbl !crc (Char.code (String.unsafe_get data i))
          done;
          Reader.advance r (8 * whole);
          left := !left - (8 * whole)
        end;
        for _ = 1 to !left do
          crc := update ~width ~poly !crc (Reader.read_bit r)
        done;
        !crc
    | _ ->
        let crc = ref 0 in
        for _ = 1 to nbits do
          crc := update ~width ~poly !crc (Reader.read_bit r)
        done;
        !crc

  let of_string ~width ~poly s =
    match table_for ~width ~poly with
    | Some tbl ->
        let crc = ref 0 in
        String.iter (fun c -> crc := step_byte ~width tbl !crc (Char.code c)) s;
        !crc
    | None ->
        let r = Reader.of_string s in
        of_reader ~width ~poly r ~nbits:(8 * String.length s)
end

let flip_bits s bits =
  let b = Bytes.of_string s in
  let nbits = 8 * Bytes.length b in
  List.iter
    (fun k ->
      if k < 0 || k >= nbits then
        invalid_arg
          (Printf.sprintf "Bits.flip_bits: bit %d outside image of %d bits" k
             nbits);
      let byte = k lsr 3 and off = k land 7 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (0x80 lsr off))))
    bits;
  Bytes.unsafe_to_string b

let popcount v =
  if v < 0 then invalid_arg "Bits.popcount: negative";
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let bits_needed n =
  if n <= 0 then 0
  else if n = 1 then 1
  else
    let rec go w = if 1 lsl w >= n then w else go (w + 1) in
    go 1

let flips_between a b = popcount (a lxor b)
