module Writer = struct
  type t = {
    mutable bytes : Bytes.t;
    mutable nbits : int;
  }

  let create ?(initial_bytes = 64) () =
    { bytes = Bytes.make (max 1 initial_bytes) '\000'; nbits = 0 }

  let length w = w.nbits

  let ensure w extra_bits =
    let needed = (w.nbits + extra_bits + 7) / 8 in
    let cap = Bytes.length w.bytes in
    if needed > cap then begin
      let cap' = max needed (2 * cap) in
      let b = Bytes.make cap' '\000' in
      Bytes.blit w.bytes 0 b 0 cap;
      w.bytes <- b
    end

  let add_bit w b =
    ensure w 1;
    if b then begin
      let byte = w.nbits lsr 3 and off = w.nbits land 7 in
      let v = Char.code (Bytes.get w.bytes byte) in
      Bytes.set w.bytes byte (Char.chr (v lor (0x80 lsr off)))
    end;
    w.nbits <- w.nbits + 1

  let add_bits w ~width v =
    if width < 0 || width > 62 then
      invalid_arg "Bits.Writer.add_bits: width out of range";
    if v < 0 || (width < 62 && v lsr width <> 0) then
      invalid_arg "Bits.Writer.add_bits: value does not fit width";
    for i = width - 1 downto 0 do
      add_bit w ((v lsr i) land 1 = 1)
    done

  let add_string w s =
    String.iter (fun c -> add_bits w ~width:8 (Char.code c)) s

  let align_byte w =
    let pad = (8 - (w.nbits land 7)) land 7 in
    for _ = 1 to pad do
      add_bit w false
    done;
    pad

  let contents w = Bytes.sub_string w.bytes 0 ((w.nbits + 7) / 8)
end

module Reader = struct
  type t = {
    data : string;
    nbits : int;
    mutable cursor : int;
  }

  let of_string s = { data = s; nbits = 8 * String.length s; cursor = 0 }
  let pos r = r.cursor
  let length r = r.nbits
  let remaining r = r.nbits - r.cursor

  let seek r bit =
    if bit < 0 || bit > r.nbits then
      invalid_arg
        (Printf.sprintf "Bits.Reader.seek: bit %d outside stream of %d bits"
           bit r.nbits);
    r.cursor <- bit

  let read_bit r =
    if r.cursor >= r.nbits then
      invalid_arg
        (Printf.sprintf "Bits.Reader.read_bit: exhausted at bit %d/%d"
           r.cursor r.nbits);
    let byte = r.cursor lsr 3 and off = r.cursor land 7 in
    r.cursor <- r.cursor + 1;
    Char.code r.data.[byte] land (0x80 lsr off) <> 0

  let read_bits r ~width =
    if width < 0 || width > 62 then
      invalid_arg
        (Printf.sprintf
           "Bits.Reader.read_bits: width %d out of range at bit %d/%d" width
           r.cursor r.nbits);
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if read_bit r then 1 else 0)
    done;
    !v

  let read_bit_opt r = if r.cursor >= r.nbits then None else Some (read_bit r)

  let read_bits_opt r ~width =
    if width < 0 || width > 62 then None
    else if r.nbits - r.cursor < width then None
    else Some (read_bits r ~width)
end

(* Bitwise CRCs, MSB-first, zero initial value and no final xor — the guard
   words of the protected block framing (Scheme.protect) and of protected
   decode tables.  Any CRC with these generator polynomials detects every
   single-bit error and every burst shorter than the register. *)
module Crc = struct
  let crc8_poly = 0x07 (* x^8 + x^2 + x + 1 *)
  let crc16_poly = 0x1021 (* CCITT: x^16 + x^12 + x^5 + 1 *)

  let update ~width ~poly crc bit =
    let top = 1 lsl (width - 1) in
    let mask = (1 lsl width) - 1 in
    let crc = if bit then crc lxor top else crc in
    let crc = crc lsl 1 in
    let crc = if crc land (1 lsl width) <> 0 then crc lxor poly else crc in
    crc land mask

  let of_reader ~width ~poly r ~nbits =
    let crc = ref 0 in
    for _ = 1 to nbits do
      crc := update ~width ~poly !crc (Reader.read_bit r)
    done;
    !crc

  let of_string ~width ~poly s =
    let r = Reader.of_string s in
    of_reader ~width ~poly r ~nbits:(8 * String.length s)
end

let flip_bits s bits =
  let b = Bytes.of_string s in
  let nbits = 8 * Bytes.length b in
  List.iter
    (fun k ->
      if k < 0 || k >= nbits then
        invalid_arg
          (Printf.sprintf "Bits.flip_bits: bit %d outside image of %d bits" k
             nbits);
      let byte = k lsr 3 and off = k land 7 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (0x80 lsr off))))
    bits;
  Bytes.unsafe_to_string b

let popcount v =
  if v < 0 then invalid_arg "Bits.popcount: negative";
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let bits_needed n =
  if n <= 0 then 0
  else if n = 1 then 1
  else
    let rec go w = if 1 lsl w >= n then w else go (w + 1) in
    go 1

let flips_between a b = popcount (a lxor b)
