(** The cache study's fetch simulators (paper §3-§5, Figure 13-14).

    Replays a block-granular execution trace against one of four fetch
    organizations and accounts cycles with the paper's Table 1:

    - {b Ideal}: perfect cache, perfect prediction — one MOP per cycle,
      always;
    - {b Base}: uncompressed 40-bit code in the banked ICache (20 KB);
    - {b Tailored}: tailored-ISA code in the banked ICache, extra miss-path
      stage (16 KB);
    - {b Compressed}: Huffman-compressed code cached compressed, L0
      decompression buffer, decompressor on the hit path (16 KB).

    Every model fetches blocks atomically (restricted placement), predicts
    the next block with the ATB-resident 2-bit/last-target predictor, and
    streams one MOP per cycle after the Table 1 initiation penalty.

    The simulator can additionally run a soft-error campaign (a
    {!fault_plan}): scheduled single-bit upsets land in resident cache
    lines, a possibly-corrupt ROM backs every refill, and each delivery of
    a dirty block runs the scheme's checked decoder.  A detected corruption
    triggers the recovery policy — invalidate the block's lines, refetch
    from ROM at the full miss penalty, retry up to [max_retries] times,
    then raise a machine check. *)

type result = {
  model : string;
  cycles : int;
  ops_delivered : int;
  mops_delivered : int;
  block_visits : int;
  ipc : float;  (** ops delivered per cycle — the paper's Figure 13 metric *)
  l1_hits : int;
  l1_misses : int;
  l0_hits : int;  (** compressed model only; 0 otherwise *)
  l0_misses : int;
  mispredicts : int;
  atb_misses : int;
  lines_fetched : int;
  bus_flips : int;  (** Figure 14 metric *)
  bus_beats : int;
  faults_injected : int;  (** upsets that landed in a resident line *)
  faults_detected : int;  (** deliveries the checked decoder rejected *)
  faults_corrected : int;  (** detections healed by a ROM refetch *)
  silent_corruptions : int;  (** wrong MOPs delivered without detection *)
  machine_checks : int;  (** recoveries abandoned after [max_retries] *)
  recovery_cycles : int;  (** cycles spent inside the recovery loop *)
}

(** A deterministic soft-error campaign for one [run].

    [line_events] is sorted by visit index; event [(v, bit)] flips absolute
    image bit [bit] at the start of visit [v], provided the line holding it
    is resident (upsets aimed at empty frames are dropped — see
    [faults_injected]).  [rom_image] backs refills and recovery refetches;
    pass the scheme's own image for a cache-only campaign, or a pre-flipped
    copy to model ROM cell faults.  [decode_check] must be total (e.g.
    [Encoding.Scheme.decode_block_checked] partially applied) and
    [reference] gives the golden MOPs used to classify silent
    corruptions. *)
type fault_plan = {
  rom_image : string;
  line_events : (int * int) array;
  decode_check :
    string ->
    int ->
    (Tepic.Op.t list, Encoding.Scheme.decode_error) Stdlib.result;
  reference : int -> Tepic.Op.t list;
  max_retries : int;
}

(** [run ?faults ?obs ~model ~cfg ~scheme ~att trace] — replay [trace].
    [scheme] must be the layout the model caches ([Baseline] image for
    [Base], tailored image for [Tailored], a Huffman image for
    [Compressed]); [att] must be built from the same scheme with [cfg]'s
    line size.

    [obs], when given, receives a cycle-stamped {!Cccs_obs.Event.Fetch}
    stream: L1 hit/miss, L0 fill/hit, ATB miss, mispredict, decode stall,
    per-line bus beats, block delivery, and the fault
    inject/detect/recover/machine-check episodes of a campaign.  The stream
    is deterministic (two identical runs emit byte-identical lines) and
    purely additive: results are bit-identical with and without a sink, and
    an uninstrumented run allocates no event values. *)
val run :
  ?faults:fault_plan ->
  ?obs:Cccs_obs.Sink.t ->
  model:Config.model ->
  cfg:Config.t ->
  scheme:Encoding.Scheme.t ->
  att:Encoding.Att.t ->
  Emulator.Trace.t ->
  result

(** [run_ideal ?obs ~att trace] — the perfect-fetch upper bound.  [obs]
    receives one [Deliver] event per block visit. *)
val run_ideal :
  ?obs:Cccs_obs.Sink.t -> att:Encoding.Att.t -> Emulator.Trace.t -> result

(** {1 Streaming entry points}

    [run_iter] and [run_ideal_iter] are [run]/[run_ideal] generalized over
    a push iterator: [iter_blocks f] must call [f] once per block visit, in
    trace order.  This is how million-visit traces stream through the
    simulator in bounded memory — pair with
    [Workloads.Trace_stream.with_blocks], which replays a chunked on-disk
    trace without ever materializing it ([run trace] is literally
    [run_iter (fun f -> Emulator.Trace.iter f trace)]).  [block_visits] in
    the result counts the calls the iterator actually made. *)

val run_iter :
  ?faults:fault_plan ->
  ?obs:Cccs_obs.Sink.t ->
  model:Config.model ->
  cfg:Config.t ->
  scheme:Encoding.Scheme.t ->
  att:Encoding.Att.t ->
  ((int -> unit) -> unit) ->
  result

val run_ideal_iter :
  ?obs:Cccs_obs.Sink.t -> att:Encoding.Att.t -> ((int -> unit) -> unit) -> result

val pp : Format.formatter -> result -> unit

(** Full-record CSV row for [result] — the single machine-readable path
    shared by the figure exports and fault campaigns ([cccs export]). *)
val csv_header : string

val csv_row : result -> string
