type result = {
  model : string;
  cycles : int;
  ops_delivered : int;
  mops_delivered : int;
  block_visits : int;
  ipc : float;
  l1_hits : int;
  l1_misses : int;
  l0_hits : int;
  l0_misses : int;
  mispredicts : int;
  atb_misses : int;
  lines_fetched : int;
  bus_flips : int;
  bus_beats : int;
  faults_injected : int;
  faults_detected : int;
  faults_corrected : int;
  silent_corruptions : int;
  machine_checks : int;
  recovery_cycles : int;
}

type fault_plan = {
  rom_image : string;
  line_events : (int * int) array;
  decode_check :
    string ->
    int ->
    (Tepic.Op.t list, Encoding.Scheme.decode_error) Stdlib.result;
  reference : int -> Tepic.Op.t list;
  max_retries : int;
}

let model_name = function
  | Config.Base -> "base"
  | Config.Tailored -> "tailored"
  | Config.Compressed -> "compressed"

let ops_equal a b =
  try List.for_all2 Tepic.Op.equal a b with Invalid_argument _ -> false

(* Instrumentation sites below all follow the same shape:

     match obs with Some s -> Sink.emit s (Event.Fetch {...}) | None -> ()

   so that the event value is only ever constructed when a sink is
   installed — a plain run allocates nothing and the results are
   bit-identical with and without [?obs] (the sink never feeds back). *)
let run_iter ?faults ?obs ~model ~cfg ~scheme ~(att : Encoding.Att.t)
    iter_blocks =
  let cache = Line_cache.create cfg in
  let atb = Atb.create cfg ~num_blocks:(Array.length att.Encoding.Att.entries) in
  let l0 = L0_buffer.create cfg in
  let bus = Bus.create cfg ~image:scheme.Encoding.Scheme.image in
  let compressed = model = Config.Compressed in
  let cycles = ref 0 in
  let ops = ref 0 and mops = ref 0 in
  let l1_hits = ref 0 and l1_misses = ref 0 in
  let mispredicts = ref 0 in
  let lines_fetched = ref 0 in
  let prev = ref None in
  let predicted_next = ref (-1) in
  (* Fault state: flips applied to resident lines but not yet overwritten by
     a refill, plus the blocks whose ROM bytes differ from the clean image. *)
  let injected = ref 0 and detected = ref 0 and corrected = ref 0 in
  let silent = ref 0 and traps = ref 0 and recovery = ref 0 in
  let line_flips : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let visit = ref 0 and ev_i = ref 0 in
  let rom_dirty =
    match faults with
    | None -> [||]
    | Some f ->
        if String.equal f.rom_image scheme.Encoding.Scheme.image then [||]
        else
          Array.mapi
            (fun i off ->
              let sz = scheme.Encoding.Scheme.block_bits.(i) in
              let b0 = off / 8 and b1 = (off + max 1 sz - 1) / 8 in
              let len =
                min (String.length f.rom_image)
                  (String.length scheme.Encoding.Scheme.image)
              in
              let rec differs k =
                k <= b1
                && (k >= len
                   || f.rom_image.[k] <> scheme.Encoding.Scheme.image.[k]
                   || differs (k + 1))
              in
              differs b0)
            scheme.Encoding.Scheme.block_offset_bits
  in
  let forget_flips lines = List.iter (Hashtbl.remove line_flips) lines in
  let line_beats =
    (cfg.Config.line_bits + cfg.Config.bus_bits - 1) / cfg.Config.bus_bits
  in
  iter_blocks
    (fun b ->
      let e = att.Encoding.Att.entries.(b) in
      let offset_bits = scheme.Encoding.Scheme.block_offset_bits.(b) in
      let size_bits = scheme.Encoding.Scheme.block_bits.(b) in
      (* 0. Deliver this visit's scheduled upsets.  An upset only lands when
         its line is resident — bits in empty frames have no storage cell to
         flip — so the applied count can trail the schedule. *)
      (match faults with
      | Some f ->
          while
            !ev_i < Array.length f.line_events
            && fst f.line_events.(!ev_i) <= !visit
          do
            let _, bit = f.line_events.(!ev_i) in
            incr ev_i;
            let line = bit / cfg.Config.line_bits in
            if Line_cache.line_resident cache line then begin
              incr injected;
              (match obs with
              | Some s ->
                  Cccs_obs.Sink.emit s
                    (Cccs_obs.Event.Fetch
                       { cycle = !cycles; visit = !visit; block = b;
                         ev = Cccs_obs.Event.Fault_inject { bit } })
              | None -> ());
              let prior =
                Option.value ~default:[] (Hashtbl.find_opt line_flips line)
              in
              Hashtbl.replace line_flips line (bit :: prior)
            end
          done
      | None -> ());
      (* 1. Resolve the previous block's prediction and train it. *)
      let predicted =
        match !prev with
        | None -> true
        | Some p ->
            let ok = !predicted_next = b in
            if not ok then begin
              incr mispredicts;
              match obs with
              | Some s ->
                  Cccs_obs.Sink.emit s
                    (Cccs_obs.Event.Fetch
                       { cycle = !cycles; visit = !visit; block = b;
                         ev = Cccs_obs.Event.Mispredict })
              | None -> ()
            end;
            Atb.update atb p ~next:b;
            ok
      in
      (* 2. ATB lookup for the new block. *)
      let atb_hit = Atb.lookup atb b in
      if not atb_hit then begin
        cycles := !cycles + cfg.Config.atb_miss_penalty;
        let flips = Bus.fetch_extra_bits bus att.Encoding.Att.entry_bits in
        match obs with
        | Some s ->
            let bw = cfg.Config.bus_bits in
            let beats = (max 0 att.Encoding.Att.entry_bits + bw - 1) / bw in
            Cccs_obs.Sink.emit s
              (Cccs_obs.Event.Fetch
                 { cycle = !cycles; visit = !visit; block = b;
                   ev =
                     Cccs_obs.Event.Atb_miss
                       { penalty = cfg.Config.atb_miss_penalty } });
            Cccs_obs.Sink.emit s
              (Cccs_obs.Event.Fetch
                 { cycle = !cycles; visit = !visit; block = b;
                   ev = Cccs_obs.Event.Bus_beat { beats; flips } })
        | None -> ignore flips
      end;
      (* 3. Cache and buffer state. *)
      let buffer_hit = compressed && L0_buffer.hit l0 b in
      let cache_hit =
        if compressed && buffer_hit then
          (* L0 has priority; L1 is not consulted. *)
          true
        else Line_cache.block_resident cache ~offset_bits ~size_bits
      in
      if not buffer_hit then begin
        if cache_hit then incr l1_hits else incr l1_misses;
        (* Memory traffic for the missing lines, then fill.  A refill
           overwrites any pending upset in those lines. *)
        let missing = Line_cache.fetched_lines cache ~offset_bits ~size_bits in
        (match obs with
        | Some s ->
            Cccs_obs.Sink.emit s
              (Cccs_obs.Event.Fetch
                 { cycle = !cycles; visit = !visit; block = b;
                   ev =
                     (if cache_hit then Cccs_obs.Event.L1_hit
                      else
                        Cccs_obs.Event.L1_miss
                          { lines = List.length missing }) })
        | None -> ());
        List.iter
          (fun line ->
            let flips = Bus.fetch_line bus line in
            match obs with
            | Some s ->
                Cccs_obs.Sink.emit s
                  (Cccs_obs.Event.Fetch
                     { cycle = !cycles; visit = !visit; block = b;
                       ev = Cccs_obs.Event.Bus_beat { beats = line_beats; flips } })
            | None -> ignore flips)
          missing;
        forget_flips missing;
        lines_fetched :=
          !lines_fetched + Line_cache.touch_block cache ~offset_bits ~size_bits;
        if compressed then begin
          L0_buffer.insert l0 b ~ops:e.Encoding.Att.ops;
          match obs with
          | Some s ->
              Cccs_obs.Sink.emit s
                (Cccs_obs.Event.Fetch
                   { cycle = !cycles; visit = !visit; block = b;
                     ev = Cccs_obs.Event.L0_fill { ops = e.Encoding.Att.ops } })
          | None -> ()
        end
      end
      else
        (match obs with
        | Some s ->
            Cccs_obs.Sink.emit s
              (Cccs_obs.Event.Fetch
                 { cycle = !cycles; visit = !visit; block = b;
                   ev = Cccs_obs.Event.L0_hit })
        | None -> ());
      (* 3b. Fault delivery check.  The L0 buffer holds already-decompressed
         MOPs, so a buffer hit bypasses both fault surfaces; every other
         delivery re-reads cached code bits and runs the checked decoder
         when the block's backing bits may be corrupt. *)
      (match faults with
      | Some f when not buffer_hit ->
          let first, last =
            Line_cache.lines_of_block cache ~offset_bits ~size_bits
          in
          let flips = ref [] in
          if Hashtbl.length line_flips > 0 then
            for l = first to last do
              match Hashtbl.find_opt line_flips l with
              | Some bits ->
                  List.iter
                    (fun k ->
                      if k >= offset_bits && k < offset_bits + size_bits then
                        flips := k :: !flips)
                    bits
              | None -> ()
            done;
          let dirty =
            !flips <> [] || (Array.length rom_dirty > 0 && rom_dirty.(b))
          in
          if dirty then begin
            let img =
              if !flips = [] then f.rom_image
              else Bits.flip_bits f.rom_image !flips
            in
            (* [emit_fault] receives a closed constructor function so the
               event is only built under the [Some] branch. *)
            let emit_fault mk =
              match obs with
              | Some s ->
                  Cccs_obs.Sink.emit s
                    (Cccs_obs.Event.Fetch
                       { cycle = !cycles; visit = !visit; block = b;
                         ev = mk () })
              | None -> ()
            in
            match f.decode_check img b with
            | Ok ops when ops_equal ops (f.reference b) -> ()
            | Ok _ ->
                incr silent;
                emit_fault (fun () ->
                    Cccs_obs.Event.Fault_silent { surface = "cache" })
            | Error _ ->
                incr detected;
                emit_fault (fun () ->
                    Cccs_obs.Event.Fault_detect { surface = "cache" });
                (* Recovery: invalidate the block's lines and refetch from
                   ROM at the full miss penalty; after [max_retries] failed
                   attempts, raise a machine check and deliver nothing. *)
                let all_lines =
                  List.init (last - first + 1) (fun i -> first + i)
                in
                let rec retry k =
                  forget_flips all_lines;
                  List.iter
                    (fun line -> ignore (Bus.fetch_line bus line))
                    all_lines;
                  lines_fetched := !lines_fetched + List.length all_lines;
                  let pen =
                    Config.penalty model ~predicted:false ~cache_hit:false
                      ~buffer_hit:false ~lines:e.Encoding.Att.lines
                  in
                  recovery := !recovery + pen;
                  cycles := !cycles + pen;
                  (match obs with
                  | Some s ->
                      Cccs_obs.Sink.emit s
                        (Cccs_obs.Event.Fetch
                           { cycle = !cycles; visit = !visit; block = b;
                             ev = Cccs_obs.Event.Fault_recover { cycles = pen } })
                  | None -> ());
                  match f.decode_check f.rom_image b with
                  | Ok ops when ops_equal ops (f.reference b) -> incr corrected
                  | Ok _ ->
                      incr silent;
                      emit_fault (fun () ->
                          Cccs_obs.Event.Fault_silent { surface = "cache" })
                  | Error _ ->
                      if k + 1 < f.max_retries then retry (k + 1)
                      else begin
                        incr traps;
                        emit_fault (fun () -> Cccs_obs.Event.Machine_check)
                      end
                in
                retry 0
          end
      | _ -> ());
      (* 4. Cycle accounting: Table 1 initiation plus MOP streaming. *)
      let pen =
        Config.penalty model ~predicted ~cache_hit ~buffer_hit
          ~lines:e.Encoding.Att.lines
      in
      (match obs with
      | Some s ->
          (* Stamped at delivery start so the slice covers the stall. *)
          if pen > 1 then
            Cccs_obs.Sink.emit s
              (Cccs_obs.Event.Fetch
                 { cycle = !cycles; visit = !visit; block = b;
                   ev = Cccs_obs.Event.Decode_stall { cycles = pen - 1 } });
          Cccs_obs.Sink.emit s
            (Cccs_obs.Event.Fetch
               { cycle = !cycles; visit = !visit; block = b;
                 ev =
                   Cccs_obs.Event.Deliver
                     { penalty = pen; ops = e.Encoding.Att.ops;
                       mops = e.Encoding.Att.mops } })
      | None -> ());
      cycles := !cycles + pen + (e.Encoding.Att.mops - 1);
      ops := !ops + e.Encoding.Att.ops;
      mops := !mops + e.Encoding.Att.mops;
      (* 5. Predict the next block from this block's entry; optionally
         prefetch its lines in the shadow of the streaming cycles. *)
      predicted_next := Atb.predict atb b;
      if cfg.Config.prefetch_next && !predicted_next >= 0 then begin
        let p = !predicted_next in
        let p_off = scheme.Encoding.Scheme.block_offset_bits.(p) in
        let p_sz = scheme.Encoding.Scheme.block_bits.(p) in
        let missing =
          Line_cache.fetched_lines cache ~offset_bits:p_off ~size_bits:p_sz
        in
        List.iter
          (fun line ->
            let flips = Bus.fetch_line bus line in
            match obs with
            | Some s ->
                Cccs_obs.Sink.emit s
                  (Cccs_obs.Event.Fetch
                     { cycle = !cycles; visit = !visit; block = p;
                       ev = Cccs_obs.Event.Bus_beat { beats = line_beats; flips } })
            | None -> ignore flips)
          missing;
        forget_flips missing;
        lines_fetched :=
          !lines_fetched
          + Line_cache.touch_block cache ~offset_bits:p_off ~size_bits:p_sz
      end;
      prev := Some b;
      incr visit);
  {
    model = model_name model;
    cycles = !cycles;
    ops_delivered = !ops;
    mops_delivered = !mops;
    block_visits = !visit;
    ipc =
      (if !cycles = 0 then 0. else float_of_int !ops /. float_of_int !cycles);
    l1_hits = !l1_hits;
    l1_misses = !l1_misses;
    l0_hits = L0_buffer.hits l0;
    l0_misses = L0_buffer.misses l0;
    mispredicts = !mispredicts;
    atb_misses = Atb.misses atb;
    lines_fetched = !lines_fetched;
    bus_flips = Bus.total_flips bus;
    bus_beats = Bus.total_beats bus;
    faults_injected = !injected;
    faults_detected = !detected;
    faults_corrected = !corrected;
    silent_corruptions = !silent;
    machine_checks = !traps;
    recovery_cycles = !recovery;
  }

let run_ideal_iter ?obs ~(att : Encoding.Att.t) iter_blocks =
  let cycles = ref 0 and ops = ref 0 and mops = ref 0 in
  let visit = ref 0 in
  iter_blocks
    (fun b ->
      let e = att.Encoding.Att.entries.(b) in
      (match obs with
      | Some s ->
          Cccs_obs.Sink.emit s
            (Cccs_obs.Event.Fetch
               { cycle = !cycles; visit = !visit; block = b;
                 ev =
                   Cccs_obs.Event.Deliver
                     { penalty = 1; ops = e.Encoding.Att.ops;
                       mops = e.Encoding.Att.mops } })
      | None -> ());
      cycles := !cycles + e.Encoding.Att.mops;
      ops := !ops + e.Encoding.Att.ops;
      mops := !mops + e.Encoding.Att.mops;
      incr visit);
  {
    model = "ideal";
    cycles = !cycles;
    ops_delivered = !ops;
    mops_delivered = !mops;
    block_visits = !visit;
    ipc =
      (if !cycles = 0 then 0. else float_of_int !ops /. float_of_int !cycles);
    l1_hits = 0;
    l1_misses = 0;
    l0_hits = 0;
    l0_misses = 0;
    mispredicts = 0;
    atb_misses = 0;
    lines_fetched = 0;
    bus_flips = 0;
    bus_beats = 0;
    faults_injected = 0;
    faults_detected = 0;
    faults_corrected = 0;
    silent_corruptions = 0;
    machine_checks = 0;
    recovery_cycles = 0;
  }

let run ?faults ?obs ~model ~cfg ~scheme ~att trace =
  run_iter ?faults ?obs ~model ~cfg ~scheme ~att (fun f ->
      Emulator.Trace.iter f trace)

let run_ideal ?obs ~att trace =
  run_ideal_iter ?obs ~att (fun f -> Emulator.Trace.iter f trace)

(* Full-record CSV: the one machine-readable path shared by the figure
   exports and the fault campaigns (`cccs export`, section "sim"). *)
let csv_header =
  "model,cycles,ops_delivered,mops_delivered,block_visits,ipc,l1_hits,\
   l1_misses,l0_hits,l0_misses,mispredicts,atb_misses,lines_fetched,\
   bus_flips,bus_beats,faults_injected,faults_detected,faults_corrected,\
   silent_corruptions,machine_checks,recovery_cycles"

let csv_row r =
  Printf.sprintf "%s,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d"
    r.model r.cycles r.ops_delivered r.mops_delivered r.block_visits r.ipc
    r.l1_hits r.l1_misses r.l0_hits r.l0_misses r.mispredicts r.atb_misses
    r.lines_fetched r.bus_flips r.bus_beats r.faults_injected r.faults_detected
    r.faults_corrected r.silent_corruptions r.machine_checks r.recovery_cycles

let pp ppf r =
  Format.fprintf ppf
    "%-10s ipc=%.3f cycles=%d ops=%d l1=%d/%d l0=%d/%d mispred=%d flips=%d"
    r.model r.ipc r.cycles r.ops_delivered r.l1_hits r.l1_misses r.l0_hits
    r.l0_misses r.mispredicts r.bus_flips;
  if r.faults_injected > 0 || r.faults_detected > 0 then
    Format.fprintf ppf " faults=%d det=%d corr=%d sdc=%d mc=%d rec=%d"
      r.faults_injected r.faults_detected r.faults_corrected
      r.silent_corruptions r.machine_checks r.recovery_cycles
