(** Set-associative line cache over a scheme's compressed address space.

    Models the storage of the banked ICache (§3.4): the two banks are
    interleaved line storage, so for hit/miss purposes the structure is an
    ordinary set-associative cache of {!Config.t.line_bits} lines with LRU
    replacement.  Blocks follow the restricted placement model — a block
    hits only if {e every} line it spans is resident. *)

type t

val create : Config.t -> t

(** [lines_of_block t ~offset_bits ~size_bits] — inclusive line-number
    range a block occupies. *)
val lines_of_block : t -> offset_bits:int -> size_bits:int -> int * int

(** [line_resident t line] — is one line present (does not touch LRU)? *)
val line_resident : t -> int -> bool

(** [block_resident t ~offset_bits ~size_bits] — restricted-placement hit
    test (does not touch LRU state). *)
val block_resident : t -> offset_bits:int -> size_bits:int -> bool

(** [touch_block t ~offset_bits ~size_bits] — reference the block: missing
    lines are filled (LRU eviction), present lines refreshed.  Returns the
    number of lines fetched from memory (0 on a full hit). *)
val touch_block : t -> offset_bits:int -> size_bits:int -> int

(** [fetched_lines t ~offset_bits ~size_bits] — the line numbers a
    [touch_block] would have to fetch right now (for bus modelling). *)
val fetched_lines : t -> offset_bits:int -> size_bits:int -> int list

val reset : t -> unit
