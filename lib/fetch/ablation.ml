(* Decompress-at-miss penalties: the hit path is the banked baseline (1
   cycle, 2 on mispredict); the miss path fetches n compressed lines and
   runs them through the decompressor, costing two extra cycles over the
   baseline miss (decode rate = fill rate, pipelined). *)
let penalty ~predicted ~cache_hit ~lines =
  let n = max 1 lines in
  match (predicted, cache_hit) with
  | true, true -> 1
  | true, false -> 3 + (n - 1)
  | false, true -> 2
  | false, false -> 10 + (n - 1)

let run ~cfg ~base_scheme ~comp_scheme ~(comp_att : Encoding.Att.t) trace =
  let cache = Line_cache.create cfg in
  let atb =
    Atb.create cfg ~num_blocks:(Array.length comp_att.Encoding.Att.entries)
  in
  let bus = Bus.create cfg ~image:comp_scheme.Encoding.Scheme.image in
  let cycles = ref 0 in
  let ops = ref 0 and mops = ref 0 in
  let l1_hits = ref 0 and l1_misses = ref 0 in
  let mispredicts = ref 0 in
  let lines_fetched = ref 0 in
  let prev = ref None in
  let predicted_next = ref (-1) in
  Emulator.Trace.iter
    (fun b ->
      let e = comp_att.Encoding.Att.entries.(b) in
      (* The cache stores decompressed ops: index by the baseline layout. *)
      let offset_bits = base_scheme.Encoding.Scheme.block_offset_bits.(b) in
      let size_bits = base_scheme.Encoding.Scheme.block_bits.(b) in
      let predicted =
        match !prev with
        | None -> true
        | Some p ->
            let ok = !predicted_next = b in
            if not ok then incr mispredicts;
            Atb.update atb p ~next:b;
            ok
      in
      let atb_hit = Atb.lookup atb b in
      if not atb_hit then begin
        cycles := !cycles + cfg.Config.atb_miss_penalty;
        ignore (Bus.fetch_extra_bits bus comp_att.Encoding.Att.entry_bits)
      end;
      let cache_hit = Line_cache.block_resident cache ~offset_bits ~size_bits in
      if cache_hit then incr l1_hits
      else begin
        incr l1_misses;
        (* Memory sees the compressed lines of this block. *)
        let comp_off = comp_scheme.Encoding.Scheme.block_offset_bits.(b) in
        let comp_sz = comp_scheme.Encoding.Scheme.block_bits.(b) in
        let first, last =
          Config.line_span cfg ~offset_bits:comp_off ~size_bits:comp_sz
        in
        for line = first to last do
          ignore (Bus.fetch_line bus line)
        done;
        lines_fetched := !lines_fetched + (last - first + 1)
      end;
      ignore (Line_cache.touch_block cache ~offset_bits ~size_bits);
      let pen =
        penalty ~predicted ~cache_hit ~lines:e.Encoding.Att.lines
      in
      cycles := !cycles + pen + (e.Encoding.Att.mops - 1);
      ops := !ops + e.Encoding.Att.ops;
      mops := !mops + e.Encoding.Att.mops;
      predicted_next := Atb.predict atb b;
      prev := Some b)
    trace;
  {
    Sim.model = "codepack";
    cycles = !cycles;
    ops_delivered = !ops;
    mops_delivered = !mops;
    block_visits = Emulator.Trace.length trace;
    ipc =
      (if !cycles = 0 then 0. else float_of_int !ops /. float_of_int !cycles);
    l1_hits = !l1_hits;
    l1_misses = !l1_misses;
    l0_hits = 0;
    l0_misses = 0;
    mispredicts = !mispredicts;
    atb_misses = Atb.misses atb;
    lines_fetched = !lines_fetched;
    bus_flips = Bus.total_flips bus;
    bus_beats = Bus.total_beats bus;
    faults_injected = 0;
    faults_detected = 0;
    faults_corrected = 0;
    silent_corruptions = 0;
    machine_checks = 0;
    recovery_cycles = 0;
  }
