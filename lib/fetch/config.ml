type predictor = Two_bit | Gshare of int

type t = {
  line_bits : int;
  cache_bytes : int;
  ways : int;
  l0_ops : int;
  atb_entries : int;
  atb_miss_penalty : int;
  bus_bits : int;
  predictor : predictor;
  prefetch_next : bool;
}

let default =
  {
    line_bits = 240;
    cache_bytes = 16 * 1024;
    ways = 2;
    l0_ops = 32;
    atb_entries = 128;
    atb_miss_penalty = 2;
    bus_bits = 32;
    predictor = Two_bit;
    prefetch_next = false;
  }

let default_base = { default with cache_bytes = 20 * 1024 }

type model = Base | Tailored | Compressed

(* Table 1 of the paper, transcribed.  [n] is the number of memory lines
   needed to fetch the whole block. *)
let penalty model ~predicted ~cache_hit ~buffer_hit ~lines =
  let n = max 1 lines in
  match (model, predicted, cache_hit, buffer_hit) with
  (* Base and Tailored have no L0 buffer: the buffer flag is ignored. *)
  | Base, true, true, _ -> 1
  | Base, true, false, _ -> 1 + (n - 1)
  | Base, false, true, _ -> 2
  | Base, false, false, _ -> 8 + (n - 1)
  | Tailored, true, true, _ -> 1
  | Tailored, true, false, _ -> 2 + (n - 1)
  | Tailored, false, true, _ -> 2
  | Tailored, false, false, _ -> 9 + (n - 1)
  (* Compressed: a buffer hit serves fully-decompressed ops in one cycle
     regardless of anything else. *)
  | Compressed, _, _, true -> 1
  | Compressed, true, true, false -> 1 + (n - 1)
  | Compressed, true, false, false -> 3 + (n - 1)
  | Compressed, false, true, false -> 2 + (n - 1)
  | Compressed, false, false, false -> 10 + (n - 1)

let lines_of_bits t bits =
  if t.line_bits <= 0 then invalid_arg "Config.lines_of_bits";
  max 1 ((max 1 bits + t.line_bits - 1) / t.line_bits)

let num_lines t = 8 * t.cache_bytes / t.line_bits

let num_sets t =
  let lines = num_lines t in
  max 1 (lines / t.ways)

(* The one line-mapping rule every consumer shares: [Line_cache]'s
   hit/touch geometry, the ATT's per-block line counts and the static
   timing analysis all call this, so they can never disagree on which
   lines a block spans. *)
let line_span t ~offset_bits ~size_bits =
  if t.line_bits <= 0 then invalid_arg "Config.line_span";
  let first = offset_bits / t.line_bits in
  let last = (offset_bits + max 1 size_bits - 1) / t.line_bits in
  (first, last)
