(** Fetch-side geometry and the paper's cycle-count assumptions (Table 1).

    The baseline banked ICache has two banks whose line equals the largest
    MOP (6 ops x 40 bits = 240 bits); the paper evaluates 16 KB 2-way
    caches, with the baseline rounded up to 20 KB so lines hold an integral
    number of 40-bit ops.  Penalties are cycles from starting a block fetch
    until its first MOP issues; subsequent MOPs stream one per cycle
    (§3.1). *)

(** Next-block predictor flavour.  The paper couples a 2-bit saturating
    counter with each ATB entry (§3.4) and names gshare as future work;
    both are available. *)
type predictor = Two_bit | Gshare of int  (** history bits, 2-14 *)

type t = {
  line_bits : int;  (** bank line size; also the memory line size *)
  cache_bytes : int;  (** total ICache capacity *)
  ways : int;
  l0_ops : int;  (** L0 decompression-buffer capacity, in ops *)
  atb_entries : int;
  atb_miss_penalty : int;  (** cycles to pull an ATT entry into the ATB *)
  bus_bits : int;  (** memory bus width, for bit-flip accounting *)
  predictor : predictor;
  prefetch_next : bool;
      (** §3.3: the ATB's predicted next PC "is enough to fetch blocks in
          pipelined fashion" — when set, the predicted next block's lines
          are pulled toward the cache in the shadow of the current block's
          streaming (bus traffic is charged; cycles are not; wrong guesses
          pollute). *)
}

(** 16 KB, 2-way, 240-bit lines, 32-op L0, 128-entry ATB, 32-bit bus. *)
val default : t

(** The paper's baseline cache: same, at 20 KB. *)
val default_base : t

(** Fetch-model flavour, selecting a Table 1 column. *)
type model = Base | Tailored | Compressed

(** [penalty model ~predicted ~cache_hit ~buffer_hit ~lines] — Table 1,
    verbatim: cycles until the block's first MOP issues.  [lines] is the
    table's [n].  [buffer_hit] is meaningful only for [Compressed]. *)
val penalty :
  model -> predicted:bool -> cache_hit:bool -> buffer_hit:bool -> lines:int -> int

(** [lines_of_bits t bits] — memory lines covering a block of [bits]
    starting at a line-aligned fetch (the ATT's conservative count). *)
val lines_of_bits : t -> int -> int

val num_lines : t -> int
val num_sets : t -> int

(** [line_span t ~offset_bits ~size_bits] — inclusive memory-line range
    the extent [offset_bits, offset_bits + size_bits) occupies.  The
    single geometry rule shared by {!Line_cache}, the ATT builder and the
    static timing analysis (read-only; touches no state). *)
val line_span : t -> offset_bits:int -> size_bits:int -> int * int
