type t = {
  head_of : int array;
  next_in_unit : int array;  (* -1 when the unit ends *)
}

(* [b] can fall through into [b+1]: its terminator leaves the sequential
   path reachable. *)
let falls_through program b =
  match Tepic.Program.terminator (Tepic.Program.block program b) with
  | None -> true
  | Some op -> (
      match Tepic.Op.opcode op with
      | Tepic.Opcode.BRCT | Tepic.Opcode.BRCF | Tepic.Opcode.BRLC -> true
      | Tepic.Opcode.BR | Tepic.Opcode.RET | Tepic.Opcode.BRL -> false
      | _ -> false)

let form program =
  let n = Tepic.Program.num_blocks program in
  let pred_count = Array.make n 0 in
  for b = 0 to n - 1 do
    List.iter
      (fun s -> pred_count.(s) <- pred_count.(s) + 1)
      (Tepic.Program.successors program b)
  done;
  let head_of = Array.init n Fun.id in
  let next_in_unit = Array.make n (-1) in
  for b = 0 to n - 2 do
    let succ = b + 1 in
    if
      falls_through program b
      && pred_count.(succ) = 1
      && List.mem succ (Tepic.Program.successors program b)
      && succ <> program.Tepic.Program.entry
    then begin
      next_in_unit.(b) <- succ;
      head_of.(succ) <- head_of.(b)
    end
  done;
  { head_of; next_in_unit }

let head t b =
  if b < 0 || b >= Array.length t.head_of then invalid_arg "Superblock.head";
  t.head_of.(b)

let unit_blocks t h =
  if h < 0 || h >= Array.length t.head_of || t.head_of.(h) <> h then
    invalid_arg "Superblock.unit_blocks: not a head";
  let rec go b acc =
    let acc = b :: acc in
    if t.next_in_unit.(b) >= 0 then go t.next_in_unit.(b) acc else List.rev acc
  in
  go h []

let stats t =
  let n = Array.length t.head_of in
  let units = ref 0 in
  for b = 0 to n - 1 do
    if t.head_of.(b) = b then incr units
  done;
  (!units, if !units = 0 then 0. else float_of_int n /. float_of_int !units)

(* Whole-unit footprint in the scheme's address space: blocks of a unit
   are laid out contiguously (ids are layout order), so the span runs from
   the head's offset to the last block's end. *)
let unit_span (scheme : Encoding.Scheme.t) t h =
  let blocks = unit_blocks t h in
  let last = List.nth blocks (List.length blocks - 1) in
  let offset = scheme.Encoding.Scheme.block_offset_bits.(h) in
  let stop =
    scheme.Encoding.Scheme.block_offset_bits.(last)
    + scheme.Encoding.Scheme.block_bits.(last)
  in
  (offset, max 1 (stop - offset))

let run ~model ~cfg ~scheme ~(att : Encoding.Att.t) t trace =
  let cache = Line_cache.create cfg in
  let n_blocks = Array.length t.head_of in
  let atb = Atb.create cfg ~num_blocks:n_blocks in
  let l0 = L0_buffer.create cfg in
  let bus = Bus.create cfg ~image:scheme.Encoding.Scheme.image in
  let compressed = model = Config.Compressed in
  let cycles = ref 0 in
  let ops = ref 0 and mops = ref 0 in
  let l1_hits = ref 0 and l1_misses = ref 0 in
  let mispredicts = ref 0 in
  let lines_fetched = ref 0 in
  let unit_visits = ref 0 in
  let prev_exit = ref None in
  let predicted_next = ref (-1) in
  (* Walk the block trace, grouping runs that follow unit order. *)
  let len = Emulator.Trace.length trace in
  let i = ref 0 in
  while !i < len do
    let h = Emulator.Trace.get trace !i in
    (* Consume the in-unit run. *)
    let consumed_ops = ref 0 and consumed_mops = ref 0 in
    let cursor = ref h in
    let continue = ref true in
    while !continue do
      let e = att.Encoding.Att.entries.(!cursor) in
      consumed_ops := !consumed_ops + e.Encoding.Att.ops;
      consumed_mops := !consumed_mops + e.Encoding.Att.mops;
      incr i;
      if
        !i < len
        && t.next_in_unit.(!cursor) >= 0
        && Emulator.Trace.get trace !i = t.next_in_unit.(!cursor)
      then cursor := t.next_in_unit.(!cursor)
      else continue := false
    done;
    incr unit_visits;
    let unit_head = t.head_of.(h) in
    (* Control can only enter a unit at its head (no side entrances). *)
    assert (unit_head = h);
    let offset_bits, size_bits = unit_span scheme t h in
    let predicted =
      match !prev_exit with
      | None -> true
      | Some p ->
          (* The previous unit's side- or end-exit block resolves where
             control went; its entry carries the predictor state. *)
          let ok = !predicted_next = h in
          if not ok then incr mispredicts;
          Atb.update atb p ~next:h;
          ok
    in
    let atb_hit = Atb.lookup atb h in
    if not atb_hit then begin
      cycles := !cycles + cfg.Config.atb_miss_penalty;
      ignore (Bus.fetch_extra_bits bus att.Encoding.Att.entry_bits)
    end;
    let buffer_hit = compressed && L0_buffer.hit l0 h in
    let cache_hit =
      if buffer_hit then true
      else Line_cache.block_resident cache ~offset_bits ~size_bits
    in
    if not buffer_hit then begin
      if cache_hit then incr l1_hits else incr l1_misses;
      List.iter
        (fun line -> ignore (Bus.fetch_line bus line))
        (Line_cache.fetched_lines cache ~offset_bits ~size_bits);
      lines_fetched :=
        !lines_fetched + Line_cache.touch_block cache ~offset_bits ~size_bits;
      if compressed then begin
        let unit_ops =
          List.fold_left
            (fun a b -> a + att.Encoding.Att.entries.(b).Encoding.Att.ops)
            0 (unit_blocks t h)
        in
        L0_buffer.insert l0 h ~ops:unit_ops
      end
    end;
    let unit_lines = Config.lines_of_bits cfg size_bits in
    let pen =
      Config.penalty model ~predicted ~cache_hit ~buffer_hit ~lines:unit_lines
    in
    cycles := !cycles + pen + (!consumed_mops - 1);
    ops := !ops + !consumed_ops;
    mops := !mops + !consumed_mops;
    (* The exit block's predictor entry produces the next-unit guess; make
       sure it is resident (it lives in the unit's ATB entry, so this
       lookup carries no extra latency). *)
    if !cursor <> h then ignore (Atb.lookup atb !cursor);
    predicted_next := Atb.predict atb !cursor;
    prev_exit := Some !cursor
  done;
  {
    Sim.model =
      (match model with
      | Config.Base -> "base+sb"
      | Config.Tailored -> "tailored+sb"
      | Config.Compressed -> "compressed+sb");
    cycles = !cycles;
    ops_delivered = !ops;
    mops_delivered = !mops;
    block_visits = !unit_visits;
    ipc =
      (if !cycles = 0 then 0. else float_of_int !ops /. float_of_int !cycles);
    l1_hits = !l1_hits;
    l1_misses = !l1_misses;
    l0_hits = L0_buffer.hits l0;
    l0_misses = L0_buffer.misses l0;
    mispredicts = !mispredicts;
    atb_misses = Atb.misses atb;
    lines_fetched = !lines_fetched;
    bus_flips = Bus.total_flips bus;
    bus_beats = Bus.total_beats bus;
    faults_injected = 0;
    faults_detected = 0;
    faults_corrected = 0;
    silent_corruptions = 0;
    machine_checks = 0;
    recovery_cycles = 0;
  }
