type t = {
  cfg : Config.t;
  sets : int;
  (* tags.(set).(way) = line number or -1; lru.(set).(way) = age stamp *)
  tags : int array array;
  lru : int array array;
  mutable clock : int;
}

let create cfg =
  let sets = Config.num_sets cfg in
  {
    cfg;
    sets;
    tags = Array.init sets (fun _ -> Array.make cfg.Config.ways (-1));
    lru = Array.init sets (fun _ -> Array.make cfg.Config.ways 0);
    clock = 0;
  }

let lines_of_block t ~offset_bits ~size_bits =
  Config.line_span t.cfg ~offset_bits ~size_bits

let set_of t line = line mod t.sets

let find_way t set line =
  let ways = t.tags.(set) in
  let rec go i =
    if i >= Array.length ways then None
    else if ways.(i) = line then Some i
    else go (i + 1)
  in
  go 0

let line_resident t line = find_way t (set_of t line) line <> None

let block_resident t ~offset_bits ~size_bits =
  let first, last = lines_of_block t ~offset_bits ~size_bits in
  let rec go l = l > last || (line_resident t l && go (l + 1)) in
  go first

let touch_line t line =
  t.clock <- t.clock + 1;
  let set = set_of t line in
  match find_way t set line with
  | Some w ->
      t.lru.(set).(w) <- t.clock;
      false
  | None ->
      (* Evict LRU way. *)
      let victim = ref 0 in
      Array.iteri
        (fun w age -> if age < t.lru.(set).(!victim) then victim := w)
        t.lru.(set);
      (* Prefer an empty way. *)
      Array.iteri (fun w tag -> if tag = -1 then victim := w) t.tags.(set);
      t.tags.(set).(!victim) <- line;
      t.lru.(set).(!victim) <- t.clock;
      true

let touch_block t ~offset_bits ~size_bits =
  let first, last = lines_of_block t ~offset_bits ~size_bits in
  let fetched = ref 0 in
  for l = first to last do
    if touch_line t l then incr fetched
  done;
  !fetched

let fetched_lines t ~offset_bits ~size_bits =
  let first, last = lines_of_block t ~offset_bits ~size_bits in
  let acc = ref [] in
  for l = last downto first do
    if not (line_resident t l) then acc := l :: !acc
  done;
  !acc

let reset t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1)) t.tags;
  Array.iter (fun ages -> Array.fill ages 0 (Array.length ages) 0) t.lru;
  t.clock <- 0
