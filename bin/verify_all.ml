(* verify_all — end-to-end verification sweep over every workload.

   For each workload: compile, execute, differentially check the scheduled
   VLIW program against the sequential reference interpreter (identical
   memory, identical control-flow trace), check that every encoding scheme
   decodes the ROM back to the identical program, run the static verifier
   (Cccs.Analysis) over the CFG, schedule, encodings and decoder — the
   decoder certification pass (CCCS-E2xx) gets its own per-row column —
   and run the trace-backed WCET analysis, whose bound must dominate the
   simulator replay on every scheme (bound/simulated ratio >= 1).

   This is the long-form version of what `dune runtest` samples; CI or a
   release check can run it directly:  dune exec bin/verify_all.exe

   With --json the human-readable report moves to stderr and stdout gets a
   single machine-readable JSON object (schema "cccs-verify/1") that CI
   archives as an artifact.  Exit codes are identical in both modes. *)

let json_mode = Array.exists (( = ) "--json") Sys.argv

(* Human-readable output; demoted to stderr in --json mode so stdout stays
   pure JSON. *)
let out = if json_mode then stderr else stdout

type row = {
  name : string;
  mem_ok : bool;
  trace_ok : bool;
  schemes_ok : bool;
  lint_ok : bool;
  lint_warnings : int;
  validate_ok : bool;
  validate_failed : string list;
      (* schemes the image-level translation validator rejected *)
  certify_ok : bool;
  certify_failed : string list;
      (* schemes the decoder certification pass rejected (CCCS-E2xx) *)
  faults_ok : bool;
  faults_detected : int;
  wcet_ok : bool;
  wcet_failed : string list;
      (* schemes with an unsound or missing bound (CCCS-E3xx / ratio<1) *)
  wcet_min_ratio : float option;
      (* worst bound/simulated ratio across schemes; sound means >= 1 *)
  seconds : float;
  perf_trend : string;
      (* vs the last ledgered sweep: "+NN%" / "-NN%" / "~" / "n/a" *)
  seconds_baseline : float option;
}

(* The per-row column table — THE single declarative source for the human
   row cells, the check summary, the JSON `checks` object and the overall
   verdict.  Adding a pass means adding one entry here; nothing else can
   drift.  [gates] distinguishes pass/fail checks from informational
   columns (perf-trend), which print but never fail the sweep. *)
type column = {
  label : string;  (* summary / JSON key, e.g. "decoder-certify" *)
  cell : string;  (* short name in the per-workload row line *)
  gates : bool;
  ok_of : row -> bool;
  show : row -> string;
}

let flag ok = if ok then "OK" else "FAIL"

let flag_schemes ok failed =
  if ok then "OK" else "FAIL[" ^ String.concat "," failed ^ "]"

let columns =
  [
    {
      label = "differential-memory";
      cell = "mem";
      gates = true;
      ok_of = (fun r -> r.mem_ok);
      show = (fun r -> flag r.mem_ok);
    };
    {
      label = "differential-trace";
      cell = "trace";
      gates = true;
      ok_of = (fun r -> r.trace_ok);
      show = (fun r -> flag r.trace_ok);
    };
    {
      label = "scheme-decode-back";
      cell = "schemes";
      gates = true;
      ok_of = (fun r -> r.schemes_ok);
      show = (fun r -> flag r.schemes_ok);
    };
    {
      label = "static-lint";
      cell = "lint";
      gates = true;
      ok_of = (fun r -> r.lint_ok);
      show = (fun r -> flag r.lint_ok);
    };
    {
      label = "image-validate";
      cell = "validate";
      gates = true;
      ok_of = (fun r -> r.validate_ok);
      show = (fun r -> flag_schemes r.validate_ok r.validate_failed);
    };
    {
      label = "decoder-certify";
      cell = "certify";
      gates = true;
      ok_of = (fun r -> r.certify_ok);
      show = (fun r -> flag_schemes r.certify_ok r.certify_failed);
    };
    {
      label = "fault-protection";
      cell = "faults";
      gates = true;
      ok_of = (fun r -> r.faults_ok);
      show =
        (fun r ->
          Printf.sprintf "%s(%d det)" (flag r.faults_ok) r.faults_detected);
    };
    {
      label = "wcet-bound";
      cell = "wcet";
      gates = true;
      ok_of = (fun r -> r.wcet_ok);
      show =
        (fun r ->
          if not r.wcet_ok then flag_schemes false r.wcet_failed
          else
            match r.wcet_min_ratio with
            | Some m -> Printf.sprintf "OK(x%.2f)" m
            | None -> "OK");
    };
    {
      label = "perf-trend";
      cell = "perf";
      gates = false;
      ok_of = (fun _ -> true);
      show = (fun r -> r.perf_trend);
    };
  ]

let gating = List.filter (fun c -> c.gates) columns
let row_ok r = List.for_all (fun c -> c.ok_of r) gating

(* Fixed seed of the per-workload fault campaign; echoed in the JSON so a
   consumer can reproduce the exact campaign outside this sweep. *)
let fault_seed = 7

(* Wall-clock of the last ledgered sweep, keyed by workload, for the
   perf-trend column.  Point-only seconds go through Obs.Compare, whose
   wide point threshold keeps one noisy run from crying regression. *)
let prev_seconds : string -> float option =
  if not (Cccs_obs.Ledger.enabled ()) then fun _ -> None
  else
    let entries, _warnings =
      Cccs_obs.Ledger.load ~path:(Cccs_obs.Ledger.default_path ())
    in
    match Cccs_obs.Ledger.last ~kind:"verify_all" entries with
    | None -> fun _ -> None
    | Some e ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun row ->
            match
              ( Cccs_obs.Json.member "name" row,
                Cccs_obs.Json.member "seconds" row )
            with
            | Some (Cccs_obs.Json.Str n), Some (Cccs_obs.Json.Num s) ->
                Hashtbl.replace tbl n s
            | _ -> ())
          e.Cccs_obs.Ledger.rows;
        fun n -> Hashtbl.find_opt tbl n

let trend_of ~name ~seconds =
  match prev_seconds name with
  | None -> ("n/a", None)
  | Some base_s -> (
      let mk s =
        [
          Cccs_obs.Json.Obj
            [
              ("name", Cccs_obs.Json.Str name);
              ("seconds", Cccs_obs.Json.Num s);
            ];
        ]
      in
      match Cccs_obs.Compare.rows ~base:(mk base_s) ~cur:(mk seconds) () with
      | [ row ] ->
          let pct = 100. *. row.Cccs_obs.Compare.slowdown in
          let label =
            match row.Cccs_obs.Compare.verdict with
            | Cccs_obs.Compare.Regressed -> Printf.sprintf "%+.0f%%" pct
            | Cccs_obs.Compare.Improved -> Printf.sprintf "%+.0f%%" pct
            | Cccs_obs.Compare.Unchanged -> "~"
            | Cccs_obs.Compare.Untrusted -> "?"
          in
          (label, Some base_s)
      | _ -> ("n/a", None))

(* Per-workload report lines go through [emit] so a parallel sweep can
   buffer each workload's output and print it in suite order after the
   gather; at jobs=1 [emit] writes straight to [out] as before. *)
let check_workload ~emit (e : Workloads.Suite.entry) =
  let t0 = Unix.gettimeofday () in
  let r = Cccs.Workload_run.load e in
  let c = r.Cccs.Workload_run.compiled in
  let prog = c.Cccs.Pipeline.program in
  let res = r.Cccs.Workload_run.exec in
  let ref_res =
    Emulator.Ref_interp.run ~max_blocks:3_000_000 c.Cccs.Pipeline.alloc_cfg
  in
  let mem_ok =
    Emulator.Ref_interp.mem_checksum ref_res
    = Emulator.Machine.mem_checksum res.Emulator.Exec.machine
  in
  let trace_ok =
    Emulator.Trace.to_array res.Emulator.Exec.trace
    = Emulator.Trace.to_array ref_res.Emulator.Ref_interp.trace
  in
  let schemes_ok =
    try
      List.iter
        (fun build -> Encoding.Scheme.verify (build prog) prog)
        [
          Encoding.Baseline.build;
          Encoding.Byte_huffman.build;
          Encoding.Full_huffman.build;
          Encoding.Tailored.build;
          Encoding.Dictionary.build;
          (fun p -> Encoding.Stream_huffman.build p);
        ];
      true
    with Failure _ -> false
  in
  (* Fixed-seed protected fault campaign: CRC framing must detect every
     exposed flip (zero silent corruptions) and must actually be exercised
     (nonzero detections). *)
  let faults_ok, faults_detected =
    let t =
      Cccs.Faults.run
        {
          Cccs.Faults.bench = r.Cccs.Workload_run.name;
          seed = fault_seed;
          flips = 16;
          retries = 2;
          protection = Encoding.Scheme.Crc8;
        }
    in
    let detected =
      List.fold_left
        (fun a (x : Cccs.Faults.scheme_report) ->
          a + x.Cccs.Faults.rom.Cccs.Faults.detected
          + x.Cccs.Faults.table.Cccs.Faults.detected
          + x.Cccs.Faults.cache.Cccs.Faults.detected)
        0 t.Cccs.Faults.rows
    in
    let no_sdc =
      List.for_all
        (fun x -> Cccs.Faults.silent_total x = 0)
        t.Cccs.Faults.rows
    in
    (no_sdc && detected > 0, detected)
  in
  let diags = Cccs.Analysis.lint_run r in
  let lint_errors = List.filter Cccs.Analysis.Diag.is_error diags in
  let lint_ok = lint_errors = [] in
  (* The image-level translation validator attributes its findings to a
     scheme; the per-scheme column shows exactly which ROMs failed. *)
  let validate_failed =
    List.sort_uniq compare
      (List.filter_map
         (fun (d : Cccs.Analysis.Diag.t) ->
           d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.scheme)
         lint_errors)
  in
  let validate_ok = validate_failed = [] in
  (* The decoder certification pass has its own code family (CCCS-E2xx);
     its column proves the decode automata rather than the built image. *)
  let certify_errors =
    List.filter
      (fun (d : Cccs.Analysis.Diag.t) ->
        String.length d.Cccs.Analysis.Diag.code >= 7
        && String.sub d.Cccs.Analysis.Diag.code 0 7 = "CCCS-E2")
      lint_errors
  in
  let certify_failed =
    List.sort_uniq compare
      (List.filter_map
         (fun (d : Cccs.Analysis.Diag.t) ->
           d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.scheme)
         certify_errors)
  in
  let certify_ok = certify_errors = [] in
  List.iter
    (fun d ->
      Printf.ksprintf emit "  %s\n" (Cccs.Analysis.Diag.to_string d))
    lint_errors;
  (* Trace-backed WCET with the simulator-replay soundness checks: every
     scheme must get a finite bound and the replay must land within it
     (bound/simulated ratio >= 1, CCCS-E30x clean). *)
  let wcet_ok, wcet_failed, wcet_min_ratio =
    let results = Cccs.Analysis.wcet_run r in
    let failed = ref [] and min_ratio = ref None in
    List.iter
      (fun (diags, w) ->
        let scheme_of_diags () =
          match
            List.find_map
              (fun (d : Cccs.Analysis.Diag.t) ->
                d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.scheme)
              diags
          with
          | Some s -> s
          | None -> "?"
        in
        let errs = List.filter Cccs.Analysis.Diag.is_error diags in
        List.iter
          (fun d ->
            Printf.ksprintf emit "  %s\n" (Cccs.Analysis.Diag.to_string d))
          errs;
        match w with
        | None -> failed := scheme_of_diags () :: !failed
        | Some (w : Cccs.Analysis.Timing_check.wcet) ->
            let sound =
              errs = []
              &&
              match w.Cccs.Analysis.Timing_check.ratio with
              | Some f -> f >= 1.0
              | None -> false
            in
            if not sound then
              failed := w.Cccs.Analysis.Timing_check.scheme :: !failed;
            match w.Cccs.Analysis.Timing_check.ratio with
            | Some f ->
                min_ratio :=
                  Some
                    (match !min_ratio with
                    | None -> f
                    | Some m -> min m f)
            | None -> ())
      results;
    (!failed = [], List.sort_uniq compare !failed, !min_ratio)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let perf_trend, seconds_baseline =
    trend_of ~name:r.Cccs.Workload_run.name ~seconds
  in
  let row =
    {
      name = r.Cccs.Workload_run.name;
      mem_ok;
      trace_ok;
      schemes_ok;
      lint_ok;
      lint_warnings = List.length diags - List.length lint_errors;
      validate_ok;
      validate_failed;
      certify_ok;
      certify_failed;
      faults_ok;
      faults_detected;
      wcet_ok;
      wcet_failed;
      wcet_min_ratio;
      seconds;
      perf_trend;
      seconds_baseline;
    }
  in
  Printf.ksprintf emit
    "%-12s blocks=%5d ops=%6d ilp=%4.2f hoist=%4d | dyn_ops=%8d visits=%7d \
     %s |%s | %.2fs\n"
    r.Cccs.Workload_run.name
    (Tepic.Program.num_blocks prog)
    (Tepic.Program.num_ops prog)
    c.Cccs.Pipeline.ilp c.Cccs.Pipeline.hoisted
    (Emulator.Trace.total_ops res.Emulator.Exec.trace)
    (Emulator.Trace.length res.Emulator.Exec.trace)
    (match res.Emulator.Exec.stop with
    | Emulator.Exec.Fell_through -> "end"
    | Emulator.Exec.Halted -> "halt"
    | Emulator.Exec.Budget_exhausted -> "BUDGET")
    (String.concat ""
       (List.map (fun col -> " " ^ col.cell ^ " " ^ col.show row) columns))
    seconds;
  row

let json_report ~jobs rows ok =
  let open Cccs_obs.Json in
  let row_json r =
    Obj
      [
        ("name", Str r.name);
        ("mem_ok", Bool r.mem_ok);
        ("trace_ok", Bool r.trace_ok);
        ("schemes_ok", Bool r.schemes_ok);
        ("lint_ok", Bool r.lint_ok);
        ("lint_warnings", int r.lint_warnings);
        ("validate_ok", Bool r.validate_ok);
        ( "validate_failed",
          Arr (List.map (fun s -> Str s) r.validate_failed) );
        ("certify_ok", Bool r.certify_ok);
        ("certify_failed", Arr (List.map (fun s -> Str s) r.certify_failed));
        ("faults_ok", Bool r.faults_ok);
        ("faults_detected", int r.faults_detected);
        ("wcet_ok", Bool r.wcet_ok);
        ("wcet_failed", Arr (List.map (fun s -> Str s) r.wcet_failed));
        ( "wcet_min_ratio",
          match r.wcet_min_ratio with None -> Null | Some f -> Num f );
        ("seconds", Num r.seconds);
        ("perf_trend", Str r.perf_trend);
        ( "seconds_baseline",
          match r.seconds_baseline with None -> Null | Some s -> Num s );
      ]
  in
  let check_json c =
    let failed =
      List.filter_map
        (fun r -> if c.ok_of r then None else Some (Str r.name))
        rows
    in
    (c.label, Obj [ ("pass", Bool (failed = [])); ("failed", Arr failed) ])
  in
  Obj
    [
      ("schema", Str "cccs-verify/1");
      ("ok", Bool ok);
      ("seed", int fault_seed);
      ("jobs", int jobs);
      ("workloads", Arr (List.map row_json rows));
      ("checks", Obj (List.map check_json gating));
    ]

let () =
  let jobs = Cccs.Parallel.default_jobs () in
  let rows =
    if jobs <= 1 then
      (* Sequential: stream each workload's lines as they finish. *)
      List.map
        (fun e ->
          let r = check_workload ~emit:(fun s -> output_string out s) e in
          flush out;
          r)
        Workloads.Suite.all
    else
      (* Parallel (CCCS_JOBS > 1): each workload verifies in its own
         domain with its output buffered; buffers print in suite order
         after the gather, so the report reads identically to the
         sequential run (modulo the per-workload timings). *)
      List.map
        (fun (r, lines) ->
          output_string out lines;
          r)
        (Cccs.Parallel.map ~jobs
           (fun e ->
             let b = Buffer.create 512 in
             let r = check_workload ~emit:(Buffer.add_string b) e in
             (r, Buffer.contents b))
           Workloads.Suite.all)
  in
  flush out;
  let total = List.length rows in
  let summary c =
    let failed = List.filter (fun r -> not (c.ok_of r)) rows in
    Printf.fprintf out "check %-22s %d/%d pass%s\n" c.label
      (total - List.length failed)
      total
      (if failed = [] then ""
       else
         ": FAIL " ^ String.concat ", " (List.map (fun r -> r.name) failed))
  in
  Printf.fprintf out "\n";
  List.iter summary gating;
  let warn = List.fold_left (fun acc r -> acc + r.lint_warnings) 0 rows in
  if warn > 0 then
    Printf.fprintf out "static-lint warnings: %d (non-fatal)\n" warn;
  let ok = List.for_all row_ok rows in
  (* Ledger: one row per workload, so the next sweep's perf-trend column
     (and `cccs perfdiff --kind verify_all`) has this run as baseline. *)
  if Cccs_obs.Ledger.enabled () then begin
    let ledger_rows =
      List.map
        (fun r ->
          Cccs_obs.Json.Obj
            [
              ("name", Cccs_obs.Json.Str r.name);
              ("seconds", Cccs_obs.Json.Num r.seconds);
              ("ok", Cccs_obs.Json.Bool (row_ok r));
            ])
        rows
    in
    try
      Cccs_obs.Ledger.append
        ~path:(Cccs_obs.Ledger.default_path ())
        (Cccs_obs.Ledger.make ~kind:"verify_all"
           ~git_rev:(Cccs_obs.Ledger.git_rev ())
           ~timestamp:(Unix.gettimeofday ())
           ~cores:(Cccs.Parallel.cores ())
           ~jobs
           ~meta:[ ("seed", Cccs_obs.Json.int fault_seed) ]
           ledger_rows)
    with Sys_error msg ->
      Printf.eprintf "verify_all: ledger: %s\n%!" msg
  end;
  if json_mode then
    print_endline (Cccs_obs.Json.to_string (json_report ~jobs rows ok));
  if ok then Printf.fprintf out "verify_all: all workloads verified\n"
  else begin
    Printf.fprintf out "verify_all: FAILURES\n";
    exit 1
  end
