(* cccs — command-line driver for the code-compression study.

   Subcommands: list, compile, compress, simulate, stats, decoder, lint,
   and the per-figure experiment reproductions (fig5..fig14, all). *)

open Cmdliner

(* Every subcommand threads this first: it installs the Logs reporter on
   stderr and wires the standard -v / -q / --verbosity flags. *)
let setup_logs =
  let init style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const init $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let find_workload name =
  match Workloads.Suite.find name with
  | Some e -> e
  | None ->
      Logs.err (fun m -> m "unknown workload %S; try `cccs list`" name);
      exit 1

let bench_arg =
  let doc = "Workload name (see `cccs list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

(* Append one entry to the cross-run ledger (CCCS_LEDGER=off disables);
   never let telemetry bookkeeping fail the measured command itself. *)
let ledger_append ~kind ?(jobs = 1) ?(schemes = []) ?(meta = []) rows =
  if Cccs_obs.Ledger.enabled () then
    try
      Cccs_obs.Ledger.append
        ~path:(Cccs_obs.Ledger.default_path ())
        (Cccs_obs.Ledger.make ~kind
           ~git_rev:(Cccs_obs.Ledger.git_rev ())
           ~timestamp:(Unix.gettimeofday ())
           ~cores:(Cccs.Parallel.cores ())
           ~jobs ~schemes ~meta rows)
    with Sys_error msg -> Logs.warn (fun m -> m "ledger: %s" msg)

let flame_arg =
  let doc =
    "Write a collapsed-stack flamegraph of the pipeline stage spans to \
     $(docv) (self time per frame, integer microseconds; a $(b,.json) \
     suffix writes Chrome trace-event / Perfetto JSON instead)."
  in
  Arg.(value & opt (some string) None & info [ "flame" ] ~docv:"FILE" ~doc)

let write_flame path rc =
  let nodes = Cccs_obs.Flame.of_recorder rc in
  Cccs_obs.Flame.write ~path nodes;
  Logs.app (fun m ->
      m "wrote flamegraph (%d root span(s), %.1f ms instrumented) to %s"
        (List.length nodes)
        (Cccs_obs.Flame.total_us nodes /. 1e3)
        path)

let list_cmd =
  let run (() : unit) () =
    List.iter
      (fun (e : Workloads.Suite.entry) ->
        Printf.printf "%-14s %s\n" e.name
          (match e.kind with
          | `Spec -> "SPECint95-like synthetic program"
          | `Kernel -> "hand-written DSP kernel"))
      Workloads.Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads")
    Term.(const run $ setup_logs $ const ())

let compile_cmd =
  let run () bench flame =
    let rc =
      match flame with
      | None -> None
      | Some _ -> Some (Cccs_obs.Recorder.create ())
    in
    let obs = Option.map Cccs_obs.Recorder.sink rc in
    let r = Cccs.Workload_run.load ?obs (find_workload bench) in
    let c = r.Cccs.Workload_run.compiled in
    let prog = c.Cccs.Pipeline.program in
    Printf.printf "workload      %s\n" r.Cccs.Workload_run.name;
    Printf.printf "blocks        %d\n" (Tepic.Program.num_blocks prog);
    Printf.printf "static ops    %d\n" (Tepic.Program.num_ops prog);
    Printf.printf "static MOPs   %d\n" (Tepic.Program.num_mops prog);
    Printf.printf "schedule ILP  %.2f ops/cycle\n" c.Cccs.Pipeline.ilp;
    Printf.printf "speculated    %d ops\n" c.Cccs.Pipeline.hoisted;
    Printf.printf "spill slots   %d\n" c.Cccs.Pipeline.spill_slots;
    List.iter
      (fun (cls, peak) ->
        Printf.printf "peak live %s   %d\n" (Tepic.Reg.cls_to_string cls) peak)
      c.Cccs.Pipeline.max_live;
    Printf.printf "executed ops  %d\n"
      (Emulator.Trace.total_ops r.Cccs.Workload_run.exec.Emulator.Exec.trace);
    Printf.printf "block visits  %d\n"
      (Emulator.Trace.length r.Cccs.Workload_run.exec.Emulator.Exec.trace);
    match (flame, rc) with
    | Some path, Some rc -> write_flame path rc
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile and execute a workload; print statistics")
    Term.(const run $ setup_logs $ bench_arg $ flame_arg)

let compress_cmd =
  let run () bench =
    let r = Cccs.Workload_run.load (find_workload bench) in
    let s = Cccs.Experiments.schemes_of r in
    let base_bits = s.Cccs.Experiments.base.Encoding.Scheme.code_bits in
    Printf.printf "%-10s %10s %10s %8s %12s\n" "scheme" "code-bits" "table-bits"
      "ratio" "transistors";
    List.iter
      (fun (sc : Encoding.Scheme.t) ->
        Printf.printf "%-10s %10d %10d %8.3f %12d\n" sc.Encoding.Scheme.name
          sc.Encoding.Scheme.code_bits sc.Encoding.Scheme.table_bits
          (Encoding.Scheme.ratio sc ~baseline_bits:base_bits)
          sc.Encoding.Scheme.decoder.Encoding.Scheme.transistors)
      ([ s.Cccs.Experiments.base; s.Cccs.Experiments.byte ]
      @ List.map snd s.Cccs.Experiments.streams
      @ [
          s.Cccs.Experiments.full;
          s.Cccs.Experiments.tailored;
          s.Cccs.Experiments.dict;
        ])
  in
  Cmd.v
    (Cmd.info "compress" ~doc:"Build every encoding scheme for a workload")
    Term.(const run $ setup_logs $ bench_arg)

let decode_cmd =
  let scheme_arg =
    let doc =
      "Scheme to decode: $(b,base), $(b,byte), $(b,stream*), $(b,full), \
       $(b,tailored) or $(b,dict) (see `cccs compress BENCH`)."
    in
    Arg.(value & opt string "full" & info [ "scheme" ] ~docv:"NAME" ~doc)
  in
  let protect_arg =
    let doc =
      "Wrap the scheme in protected block framing first: $(b,none), \
       $(b,crc8) or $(b,crc16).  Framed images split at exact frame \
       boundaries (strategy $(b,frames))."
    in
    Arg.(value & opt string "none" & info [ "protect" ] ~docv:"MODE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the chunked decode (default: CCCS_JOBS).  The \
       effective count is clamped to the machine's cores and degrades to \
       1 when the scheme has no splitting certificate — parallel decode \
       never loses to sequential."
    in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Write the decoded 40-bit baseline image to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Machine-readable report (schema cccs-decode/1) on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () bench scheme protect jobs out json flame =
    let r = Cccs.Workload_run.load (find_workload bench) in
    let s = Cccs.Experiments.schemes_of r in
    let named =
      Cccs.Experiments.all_schemes s @ [ ("dict", s.Cccs.Experiments.dict) ]
    in
    let sc =
      match List.assoc_opt scheme named with
      | Some sc -> sc
      | None ->
          Logs.err (fun m ->
              m "decode: unknown scheme %S (one of: %s)" scheme
                (String.concat ", " (List.map fst named)));
          exit 2
    in
    let sc =
      match Encoding.Scheme.protection_of_name protect with
      | Some Encoding.Scheme.Unprotected -> sc
      | Some p -> Encoding.Scheme.protect p sc
      | None ->
          Logs.err (fun m ->
              m "decode: unknown protection %S (none|crc8|crc16)" protect);
          exit 2
    in
    let rc =
      match flame with
      | None -> None
      | Some _ -> Some (Cccs_obs.Recorder.create ())
    in
    let obs = Option.map Cccs_obs.Recorder.sink rc in
    let truth =
      Tepic.Program.baseline_image
        r.Cccs.Workload_run.compiled.Cccs.Pipeline.program
    in
    (* Warm the splitting certificate (one-time DFA analysis, memoized)
       so the reported throughput measures the decode itself. *)
    ignore (Cccs.Par_decode.classify sc);
    let t0 = Unix.gettimeofday () in
    match Cccs.Pipeline.decompress ?jobs ?obs sc with
    | Error e ->
        Logs.err (fun m ->
            m "decode: %s" (Encoding.Scheme.decode_error_to_string e));
        exit 1
    | Ok (img, rep) ->
        let seconds = Unix.gettimeofday () -. t0 in
        let exact = String.equal img truth in
        let mb_per_s =
          if seconds > 0.0 then
            float_of_int (String.length sc.Encoding.Scheme.image)
            /. seconds /. 1e6
          else 0.0
        in
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out_bin path in
            output_string oc img;
            close_out oc);
        (match (flame, rc) with
        | Some path, Some rc -> write_flame path rc
        | _ -> ());
        if json then
          print_endline
            (Cccs_obs.Json.to_string
               (Cccs_obs.Json.Obj
                  [
                    ("schema", Cccs_obs.Json.Str "cccs-decode/1");
                    ("bench", Cccs_obs.Json.Str bench);
                    ("scheme", Cccs_obs.Json.Str sc.Encoding.Scheme.name);
                    ("protection", Cccs_obs.Json.Str protect);
                    ( "strategy",
                      Cccs_obs.Json.Str
                        (Cccs.Par_decode.strategy_name
                           rep.Cccs.Par_decode.strategy) );
                    ("jobs", Cccs_obs.Json.int rep.Cccs.Par_decode.jobs);
                    ("cores", Cccs_obs.Json.int (Cccs.Parallel.cores ()));
                    ("chunks", Cccs_obs.Json.int rep.Cccs.Par_decode.chunks);
                    ( "min_chunk_bits",
                      Cccs_obs.Json.int rep.Cccs.Par_decode.min_chunk_bits );
                    ( "resync_overhead_bits",
                      Cccs_obs.Json.int
                        rep.Cccs.Par_decode.resync_overhead_bits );
                    ( "compressed_bytes",
                      Cccs_obs.Json.int (String.length sc.Encoding.Scheme.image)
                    );
                    ("decoded_bytes", Cccs_obs.Json.int (String.length img));
                    ("exact", Cccs_obs.Json.Bool exact);
                    ("seconds", Cccs_obs.Json.Num seconds);
                    ("mb_per_s", Cccs_obs.Json.Num mb_per_s);
                  ]))
        else begin
          Printf.printf "workload       %s\n" bench;
          Printf.printf "scheme         %s\n" sc.Encoding.Scheme.name;
          Printf.printf "strategy       %s\n"
            (Cccs.Par_decode.strategy_to_string rep.Cccs.Par_decode.strategy);
          Printf.printf "jobs           %d (of %d core(s))\n"
            rep.Cccs.Par_decode.jobs (Cccs.Parallel.cores ());
          Printf.printf "chunks         %d (floor %d bits/chunk)\n"
            rep.Cccs.Par_decode.chunks rep.Cccs.Par_decode.min_chunk_bits;
          Printf.printf "resync bound   %d bits speculative over-read\n"
            rep.Cccs.Par_decode.resync_overhead_bits;
          Printf.printf "decoded        %d bytes from %d compressed (%s)\n"
            (String.length img)
            (String.length sc.Encoding.Scheme.image)
            (if exact then "bit-exact vs baseline" else "MISMATCH");
          Printf.printf "throughput     %.2f MB/s compressed (%.4fs)\n"
            mb_per_s seconds
        end;
        exit (if exact then 0 else 1)
  in
  Cmd.v
    (Cmd.info "decode"
       ~doc:
         "Decompress one scheme's ROM image back to the 40-bit baseline \
          image, splitting it across worker domains at certified resync \
          points (or frame/fixed-width boundaries); verifies bit-exactness \
          against the baseline")
    Term.(const run $ setup_logs $ bench_arg $ scheme_arg $ protect_arg
          $ jobs_arg $ out_arg $ json_arg $ flame_arg)

let perfetto_arg =
  let doc =
    "Also write a Chrome trace-event / Perfetto JSON timeline to $(docv) \
     (load it in ui.perfetto.dev or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE" ~doc)

let simulate_cmd =
  let run () bench perfetto flame =
    (* The flame recorder sees only stage spans: the compile pipeline's
       (via load ~obs) plus one Simulate span per fetch model, wrapped
       below — not the per-event fetch stream, which has its own
       --perfetto recorders. *)
    let frc =
      match flame with
      | None -> None
      | Some _ -> Some (Cccs_obs.Recorder.create ())
    in
    let fobs = Option.map Cccs_obs.Recorder.sink frc in
    let timed_flame label f =
      match fobs with
      | None -> f ()
      | Some obs ->
          Cccs_obs.Sink.timed ~obs ~stage:Cccs_obs.Event.Simulate ~label f
    in
    let r = Cccs.Workload_run.load ?obs:fobs (find_workload bench) in
    let s = Cccs.Experiments.schemes_of r in
    let prog = r.Cccs.Workload_run.compiled.Cccs.Pipeline.program in
    let trace = r.Cccs.Workload_run.exec.Emulator.Exec.trace in
    let cfg = Fetch.Config.default in
    let cfg_base = Fetch.Config.default_base in
    let att sc c =
      Encoding.Att.build sc ~line_bits:c.Fetch.Config.line_bits prog
    in
    let att_base = att s.Cccs.Experiments.base cfg_base in
    let tracks = ref [] in
    (* One recorder per fetch model, so the Perfetto export shows the four
       models as separate named processes. *)
    let with_track name f =
      match perfetto with
      | None -> f None
      | Some _ ->
          let rc = Cccs_obs.Recorder.create () in
          let res = f (Some (Cccs_obs.Recorder.sink rc)) in
          tracks := (name, Cccs_obs.Recorder.events rc) :: !tracks;
          res
    in
    (* Bind each run explicitly: list literals evaluate right-to-left, which
       would register the Perfetto tracks in reverse. *)
    let ideal =
      timed_flame "ideal" (fun () ->
          with_track "ideal" (fun obs ->
              Fetch.Sim.run_ideal ?obs ~att:att_base trace))
    in
    let base =
      timed_flame "base" (fun () ->
          with_track "base" (fun obs ->
              Fetch.Sim.run ?obs ~model:Fetch.Config.Base ~cfg:cfg_base
                ~scheme:s.Cccs.Experiments.base ~att:att_base trace))
    in
    let compressed =
      timed_flame "compressed" (fun () ->
          with_track "compressed" (fun obs ->
              Fetch.Sim.run ?obs ~model:Fetch.Config.Compressed ~cfg
                ~scheme:s.Cccs.Experiments.full
                ~att:(att s.Cccs.Experiments.full cfg)
                trace))
    in
    let tailored =
      timed_flame "tailored" (fun () ->
          with_track "tailored" (fun obs ->
              Fetch.Sim.run ?obs ~model:Fetch.Config.Tailored ~cfg
                ~scheme:s.Cccs.Experiments.tailored
                ~att:(att s.Cccs.Experiments.tailored cfg)
                trace))
    in
    let results = [ ideal; base; compressed; tailored ] in
    List.iter (fun res -> Format.printf "%a@." Fetch.Sim.pp res) results;
    (match perfetto with
    | None -> ()
    | Some path ->
        Cccs_obs.Export.write_file path
          (Cccs_obs.Json.to_string
             (Cccs_obs.Export.chrome_trace (List.rev !tracks)));
        Logs.app (fun m -> m "wrote Perfetto trace to %s" path));
    match (flame, frc) with
    | Some path, Some rc -> write_flame path rc
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the four fetch models on a workload")
    Term.(const run $ setup_logs $ bench_arg $ perfetto_arg $ flame_arg)

let decoder_cmd =
  let kind_arg =
    let doc = "Decoder to emit: tailored | full | byte." in
    Arg.(value & opt string "tailored" & info [ "kind" ] ~doc)
  in
  let run () bench kind =
    let r = Cccs.Workload_run.load (find_workload bench) in
    let s = Cccs.Experiments.schemes_of r in
    match kind with
    | "tailored" ->
        print_string
          (Encoding.Decoder_gen.tailored_decoder
             ~module_name:(bench ^ "_tailored_decoder")
             s.Cccs.Experiments.tailored_spec)
    | "full" | "byte" ->
        (* Rebuild the codebook to emit its dictionary ROM. *)
        let prog = r.Cccs.Workload_run.compiled.Cccs.Pipeline.program in
        let freq = Huffman.Freq.create () in
        Tepic.Program.iter_ops
          (fun op ->
            if kind = "full" then
              Huffman.Freq.add freq (Tepic.Encode.to_int op)
            else
              String.iter
                (fun c -> Huffman.Freq.add freq (Char.code c))
                (Tepic.Encode.encode_ops [ op ]))
          prog;
        let book =
          Huffman.Codebook.make
            ~max_len:
              (if kind = "full" then Encoding.Full_huffman.max_code_len
               else Encoding.Byte_huffman.max_code_len)
            ~symbol_bits:(fun _ -> if kind = "full" then 40 else 8)
            freq
        in
        print_string
          (Encoding.Decoder_gen.huffman_tables
             ~module_name:(bench ^ "_" ^ kind ^ "_dict")
             book)
    | other ->
        Logs.err (fun m -> m "unknown decoder kind %S" other);
        exit 1
  in
  Cmd.v
    (Cmd.info "decoder" ~doc:"Emit the Verilog decoder for a workload")
    Term.(const run $ setup_logs $ bench_arg $ kind_arg)

let trace_cmd =
  let path_arg =
    let doc = "Output path for the trace file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH" ~doc)
  in
  let run () bench path perfetto =
    let e = find_workload bench in
    let r =
      match perfetto with
      | None -> Cccs.Workload_run.load e
      | Some p ->
          (* Instrument the whole lower→compile→execute pipeline and dump
             the stage spans as a Perfetto timeline. *)
          let rc = Cccs_obs.Recorder.create () in
          let r = Cccs.Workload_run.load ~obs:(Cccs_obs.Recorder.sink rc) e in
          Cccs_obs.Export.write_file p
            (Cccs_obs.Json.to_string
               (Cccs_obs.Export.chrome_trace
                  [ ("pipeline", Cccs_obs.Recorder.events rc) ]));
          Logs.app (fun m -> m "wrote Perfetto span trace to %s" p);
          r
    in
    let t = r.Cccs.Workload_run.exec.Emulator.Exec.trace in
    Emulator.Trace.save t path;
    Printf.printf "wrote %d block visits (%d ops) to %s\n"
      (Emulator.Trace.length t) (Emulator.Trace.total_ops t) path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Execute a workload and save its block-address trace to a file")
    Term.(const run $ setup_logs $ bench_arg $ path_arg $ perfetto_arg)

let verify_cmd =
  let run () bench =
    let r = Cccs.Workload_run.load (find_workload bench) in
    let c = r.Cccs.Workload_run.compiled in
    let prog = c.Cccs.Pipeline.program in
    let res = r.Cccs.Workload_run.exec in
    let ref_res =
      Emulator.Ref_interp.run ~max_blocks:3_000_000 c.Cccs.Pipeline.alloc_cfg
    in
    let mem_ok =
      Emulator.Ref_interp.mem_checksum ref_res
      = Emulator.Machine.mem_checksum res.Emulator.Exec.machine
    in
    let trace_ok =
      Emulator.Trace.to_array res.Emulator.Exec.trace
      = Emulator.Trace.to_array ref_res.Emulator.Ref_interp.trace
    in
    let s = Cccs.Experiments.schemes_of r in
    List.iter
      (fun (sc : Encoding.Scheme.t) ->
        Encoding.Scheme.verify sc prog;
        Printf.printf "scheme %-10s decode-back OK\n" sc.Encoding.Scheme.name)
      ([ s.Cccs.Experiments.base; s.Cccs.Experiments.byte ]
      @ List.map snd s.Cccs.Experiments.streams
      @ [
          s.Cccs.Experiments.full;
          s.Cccs.Experiments.tailored;
          s.Cccs.Experiments.dict;
        ]);
    Printf.printf "differential memory  %s\n" (if mem_ok then "OK" else "MISMATCH");
    Printf.printf "differential trace   %s\n" (if trace_ok then "OK" else "MISMATCH");
    if not (mem_ok && trace_ok) then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Differentially verify one workload (scheduled vs sequential \
          semantics) and decode-check every scheme")
    Term.(const run $ setup_logs $ bench_arg)

(* Shared JSON shape of one diagnostic (lint --json, validate --json). *)
let diag_json (d : Cccs.Analysis.Diag.t) =
  let open Cccs_obs.Json in
  let opt f = function None -> Null | Some v -> f v in
  Obj
    [
      ("code", Str d.Cccs.Analysis.Diag.code);
      ( "severity",
        Str
          (Format.asprintf "%a" Cccs.Analysis.Diag.pp_severity
             d.Cccs.Analysis.Diag.severity) );
      ("workload", Str d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.workload);
      ( "scheme",
        opt (fun s -> Str s) d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.scheme
      );
      ("block", opt int d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.block);
      ("inst", opt int d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.inst);
      ("bit", opt int d.Cccs.Analysis.Diag.loc.Cccs.Analysis.Diag.bit);
      ("message", Str d.Cccs.Analysis.Diag.message);
    ]

let lint_cmd =
  let bench_opt_arg =
    let doc = "Workload name (see `cccs list`).  Omit with $(b,--all)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let all_arg =
    let doc = "Lint every workload in the suite." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let pass_arg =
    let doc = "Run only the named pass (see `cccs lint --passes`)." in
    Arg.(value & opt (some string) None & info [ "pass" ] ~docv:"PASS" ~doc)
  in
  let passes_arg =
    let doc = "List the registered analysis passes and exit." in
    Arg.(value & flag & info [ "passes" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit one machine-readable JSON report (schema $(b,cccs-lint/1)) on \
       stdout; the human-readable diagnostics move to stderr."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () bench all pass list_passes json =
    if list_passes then begin
      List.iter
        (fun (name, doc) -> Printf.printf "%-16s %s\n" name doc)
        Cccs.Analysis.pass_names;
      exit 0
    end;
    let entries =
      if all then Workloads.Suite.all
      else
        match bench with
        | Some b -> [ find_workload b ]
        | None ->
            Logs.err (fun m -> m "lint: give a BENCH or --all");
            exit 2
    in
    (* In JSON mode stdout carries exactly one JSON object. *)
    let out = if json then Format.err_formatter else Format.std_formatter in
    let collector = Cccs.Analysis.Diag.Collector.create () in
    List.iter
      (fun (e : Workloads.Suite.entry) ->
        let r = Cccs.Workload_run.load e in
        let target = Cccs.Analysis.target_of_run r in
        let diags =
          match pass with
          | None -> Cccs.Analysis.run_all target
          | Some p -> (
              match Cccs.Analysis.run_pass p target with
              | Some ds -> ds
              | None ->
                  Logs.err (fun m ->
                      m "lint: unknown pass %S; try --passes" p);
                  exit 2)
        in
        Cccs.Analysis.Diag.Collector.add_list collector diags;
        List.iter
          (fun d -> Format.fprintf out "%s@." (Cccs.Analysis.Diag.to_string d))
          diags)
      entries;
    Format.fprintf out "%a@." Cccs.Analysis.Diag.Collector.pp_summary collector;
    if json then begin
      let open Cccs_obs.Json in
      print_endline
        (to_string
           (Obj
              [
                ("schema", Str "cccs-lint/1");
                ( "ok",
                  Bool (Cccs.Analysis.Diag.Collector.exit_status collector = 0)
                );
                ("errors", int (Cccs.Analysis.Diag.Collector.errors collector));
                ( "warnings",
                  int (Cccs.Analysis.Diag.Collector.warnings collector) );
                ( "diags",
                  Arr
                    (List.map diag_json
                       (Cccs.Analysis.Diag.Collector.diags collector)) );
              ]))
    end;
    exit (Cccs.Analysis.Diag.Collector.exit_status collector)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the whole-pipeline static verifier (dataflow, schedule, \
          encoding, decoder, image and certification checks) on one \
          workload or the whole suite")
    Term.(const run $ setup_logs $ bench_opt_arg $ all_arg $ pass_arg
          $ passes_arg $ json_arg)

let validate_cmd =
  let bench_opt_arg =
    let doc = "Workload name (see `cccs list`).  Omit with $(b,--all)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let all_arg =
    let doc = "Validate every workload in the suite." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit one machine-readable JSON report (schema $(b,cccs-validate/1)) \
       on stdout; the human-readable report moves to stderr."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let resync_arg =
    let doc =
      "Blocks per scheme to put through the single-bit-flip \
       resynchronization-distance analysis (0 disables it)."
    in
    Arg.(value & opt int 4 & info [ "resync-blocks" ] ~docv:"N" ~doc)
  in
  let run () bench all json resync_blocks =
    let entries =
      if all then Workloads.Suite.all
      else
        match bench with
        | Some b -> [ find_workload b ]
        | None ->
            Logs.err (fun m -> m "validate: give a BENCH or --all");
            exit 2
    in
    let out = if json then Format.err_formatter else Format.std_formatter in
    let rc = Cccs_obs.Recorder.create () in
    let obs = Cccs_obs.Recorder.sink rc in
    let any_error = ref false in
    let workloads_json =
      List.map
        (fun (e : Workloads.Suite.entry) ->
          let r = Cccs.Workload_run.load e in
          let t = Cccs.Analysis.target_of_run r in
          let workload = t.Cccs.Analysis.Pass.workload in
          let program =
            match t.Cccs.Analysis.Pass.program with
            | Some p -> p
            | None -> assert false (* target_of_run always sets it *)
          in
          Format.fprintf out "%s:@." workload;
          let schemes_json =
            List.map
              (fun (sc : Encoding.Scheme.t) ->
                let name = sc.Encoding.Scheme.name in
                let t0 = Unix.gettimeofday () in
                let diags, summary =
                  Cccs_obs.Sink.timed ~obs ~stage:Cccs_obs.Event.Decoder_gen
                    ~label:("validate." ^ name) (fun () ->
                      Cccs.Analysis.Image_check.check_scheme ~workload ~program
                        ?tailored:t.Cccs.Analysis.Pass.tailored ~resync_blocks
                        sc)
                in
                let seconds = Unix.gettimeofday () -. t0 in
                if List.exists Cccs.Analysis.Diag.is_error diags then
                  any_error := true;
                List.iter
                  (fun d ->
                    Format.fprintf out "%s@." (Cccs.Analysis.Diag.to_string d))
                  diags;
                let open Cccs.Analysis.Image_check in
                (match summary.resync with
                | Some rs ->
                    Cccs_obs.Sink.gauge ~obs
                      (Printf.sprintf "validate.%s.%s.resync_max_distance"
                         workload name)
                      (float_of_int rs.max_distance);
                    Cccs_obs.Sink.gauge ~obs
                      (Printf.sprintf "validate.%s.%s.resync_silent_flips"
                         workload name)
                      (float_of_int rs.silent_flips)
                | None -> ());
                Format.fprintf out
                  "  %-10s %3d blocks %5d ops  %d error(s) %d warning(s)%s \
                   %.3fs@."
                  name summary.blocks summary.ops summary.errors
                  summary.warnings
                  (match summary.resync with
                  | Some rs ->
                      Printf.sprintf "  resync worst %d cw, %d/%d silent"
                        rs.max_distance rs.silent_flips rs.flips_analyzed
                  | None -> "")
                  seconds;
                let open Cccs_obs.Json in
                Obj
                  [
                    ("name", Str name);
                    ("blocks", int summary.blocks);
                    ("ops", int summary.ops);
                    ("errors", int summary.errors);
                    ("warnings", int summary.warnings);
                    ( "resync",
                      match summary.resync with
                      | None -> Null
                      | Some rs ->
                          Obj
                            [
                              ("blocks_analyzed", int rs.blocks_analyzed);
                              ("flips_analyzed", int rs.flips_analyzed);
                              ("silent_flips", int rs.silent_flips);
                              ("max_distance", int rs.max_distance);
                              ("worst_block", int rs.worst_block);
                            ] );
                    ("seconds", Num seconds);
                    ("diags", Arr (List.map diag_json diags));
                  ])
              t.Cccs.Analysis.Pass.schemes
          in
          Cccs_obs.Json.Obj
            [
              ("name", Cccs_obs.Json.Str workload);
              ("schemes", Cccs_obs.Json.Arr schemes_json);
            ])
        entries
    in
    if json then
      print_endline
        (Cccs_obs.Json.to_string
           (Cccs_obs.Json.Obj
              [
                ("schema", Cccs_obs.Json.Str "cccs-validate/1");
                ("ok", Cccs_obs.Json.Bool (not !any_error));
                ("events", Cccs_obs.Json.int (Cccs_obs.Recorder.length rc));
                ("workloads", Cccs_obs.Json.Arr workloads_json);
              ]))
    else
      Format.fprintf out "validate: %s@."
        (if !any_error then "FAILED" else "clean");
    exit (if !any_error then 1 else 0)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Re-decode every scheme's ROM image with an independent abstract \
          decoder (published tables only), recover block boundaries and the \
          CFG, and check round-trip, ATB mappability, dense-map ranges, \
          frame guards and resynchronization distance")
    Term.(const run $ setup_logs $ bench_opt_arg $ all_arg $ json_arg
          $ resync_arg)

let certify_cmd =
  let bench_opt_arg =
    let doc = "Workload name (see `cccs list`).  Omit with $(b,--all)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let all_arg =
    let doc = "Certify every workload in the suite." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit one machine-readable certificate (schema $(b,cccs-certify/1)) \
       on stdout; the human-readable report moves to stderr."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () bench all json =
    let entries =
      if all then Workloads.Suite.all
      else
        match bench with
        | Some b -> [ find_workload b ]
        | None ->
            Logs.err (fun m -> m "certify: give a BENCH or --all");
            exit 2
    in
    let out = if json then Format.err_formatter else Format.std_formatter in
    let collector = Cccs.Analysis.Diag.Collector.create () in
    let opt_int f = function None -> Cccs_obs.Json.Null | Some v -> f v in
    let workloads_json =
      List.map
        (fun (e : Workloads.Suite.entry) ->
          let r = Cccs.Workload_run.load e in
          let t = Cccs.Analysis.target_of_run r in
          let workload = t.Cccs.Analysis.Pass.workload in
          Format.fprintf out "%s:@." workload;
          let schemes_json =
            List.map
              (fun (sc : Encoding.Scheme.t) ->
                let diags, cert =
                  Cccs.Analysis.Certify.certify_scheme ~workload
                    ?program:t.Cccs.Analysis.Pass.program sc
                in
                Cccs.Analysis.Diag.Collector.add_list collector diags;
                List.iter
                  (fun d ->
                    Format.fprintf out "%s@." (Cccs.Analysis.Diag.to_string d))
                  diags;
                let open Cccs.Analysis.Certify in
                Format.fprintf out
                  "  %-10s %s  %d book(s)  worst op %s bits, worst block \
                   %d/%s bits@."
                  cert.scheme
                  (if cert.ok then "certified" else "FAILED")
                  (List.length cert.books)
                  (match cert.worst_op_bits with
                  | Some w -> string_of_int w
                  | None -> "-")
                  cert.worst_block_bits
                  (match cert.worst_block_bound with
                  | Some b -> string_of_int b
                  | None -> "-");
                List.iter
                  (fun b ->
                    Format.fprintf out
                      "    book %-10s %5d syms  dfa %5d states  lut \
                       %5d+%-5d  resync %s  syncword %s@."
                      b.book b.symbols b.dfa_states b.lut_root_checked
                      b.lut_sub_checked
                      (match b.resync_bits with
                      | Some n -> string_of_int n ^ " bits"
                      | None -> "unbounded")
                      (match b.sync_word_bits with
                      | Some n -> "<=" ^ string_of_int n ^ " bits"
                      | None -> "none"))
                  cert.books;
                let open Cccs_obs.Json in
                Obj
                  [
                    ("name", Str cert.scheme);
                    ("ok", Bool cert.ok);
                    ("errors", int cert.errors);
                    ("warnings", int cert.warnings);
                    ("worst_op_bits", opt_int int cert.worst_op_bits);
                    ("worst_block_bits", int cert.worst_block_bits);
                    ("worst_block_bound", opt_int int cert.worst_block_bound);
                    ("blocks_checked", int cert.blocks_checked);
                    ( "books",
                      Arr
                        (List.map
                           (fun b ->
                             Obj
                               [
                                 ("book", Str b.book);
                                 ("symbols", int b.symbols);
                                 ("max_code_len", int b.max_code_len);
                                 ("dfa_states", int b.dfa_states);
                                 ("complete", Bool b.complete);
                                 ("worst_bits", int b.worst_bits);
                                 ("lut_root_checked", int b.lut_root_checked);
                                 ("lut_sub_checked", int b.lut_sub_checked);
                                 ("recoverable", Bool b.recoverable);
                                 ("resync_bits", opt_int int b.resync_bits);
                                 ( "sync_word_bits",
                                   opt_int int b.sync_word_bits );
                               ])
                           cert.books) );
                    ("diags", Arr (List.map diag_json diags));
                  ])
              t.Cccs.Analysis.Pass.schemes
          in
          Cccs_obs.Json.Obj
            [
              ("name", Cccs_obs.Json.Str workload);
              ("schemes", Cccs_obs.Json.Arr schemes_json);
            ])
        entries
    in
    let ok = Cccs.Analysis.Diag.Collector.exit_status collector = 0 in
    if json then
      print_endline
        (Cccs_obs.Json.to_string
           (Cccs_obs.Json.Obj
              [
                ("schema", Cccs_obs.Json.Str "cccs-certify/1");
                ("ok", Cccs_obs.Json.Bool ok);
                ( "errors",
                  Cccs_obs.Json.int
                    (Cccs.Analysis.Diag.Collector.errors collector) );
                ( "warnings",
                  Cccs_obs.Json.int
                    (Cccs.Analysis.Diag.Collector.warnings collector) );
                ("workloads", Cccs_obs.Json.Arr workloads_json);
              ]))
    else
      Format.fprintf out "certify: %s (%a)@."
        (if ok then "certified" else "FAILED")
        Cccs.Analysis.Diag.Collector.pp_summary collector;
    exit (Cccs.Analysis.Diag.Collector.exit_status collector)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Prove decoder properties by exhaustive enumeration over each \
          published codebook's decode automaton: decode totality, \
          bit-exact Huffman LUT equivalence, resynchronization bounds, \
          and certified worst-case block sizes from each scheme's decode \
          model")
    Term.(const run $ setup_logs $ bench_opt_arg $ all_arg $ json_arg)

let wcet_cmd =
  let bench_opt_arg =
    let doc = "Workload name (see `cccs list`).  Omit with $(b,--all)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let all_arg =
    let doc = "Analyze every workload in the suite." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit one machine-readable report (schema $(b,cccs-wcet/1)) on \
       stdout; the human-readable report moves to stderr."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () bench all json =
    let entries =
      if all then Workloads.Suite.all
      else
        match bench with
        | Some b -> [ find_workload b ]
        | None ->
            Logs.err (fun m -> m "wcet: give a BENCH or --all");
            exit 2
    in
    let out = if json then Format.err_formatter else Format.std_formatter in
    let collector = Cccs.Analysis.Diag.Collector.create () in
    let workloads_json =
      List.map
        (fun (e : Workloads.Suite.entry) ->
          let r = Cccs.Workload_run.load e in
          let workload = r.Cccs.Workload_run.name in
          let results = Cccs.Analysis.wcet_run r in
          let rows =
            List.filter_map
              (fun (diags, w) ->
                Cccs.Analysis.Diag.Collector.add_list collector diags;
                List.iter
                  (fun d ->
                    if Cccs.Analysis.Diag.is_error d then
                      Format.fprintf out "%s@."
                        (Cccs.Analysis.Diag.to_string d))
                  diags;
                w)
              results
          in
          Cccs.Report.wcet out [ (workload, rows) ];
          let schemes_json =
            List.map2
              (fun (diags, w) _ ->
                let open Cccs_obs.Json in
                let base =
                  match w with
                  | None -> [ ("bound", Null) ]
                  | Some (w : Cccs.Analysis.Timing_check.wcet) ->
                      [
                        ("name", Str w.Cccs.Analysis.Timing_check.scheme);
                        ( "model",
                          Str
                            (Cccs.Analysis.Timing_check.model_name
                               w.Cccs.Analysis.Timing_check.model) );
                        ("bound", int w.Cccs.Analysis.Timing_check.bound);
                        ( "sim_cycles",
                          match w.Cccs.Analysis.Timing_check.sim_cycles with
                          | Some c -> int c
                          | None -> Null );
                        ( "ratio",
                          match w.Cccs.Analysis.Timing_check.ratio with
                          | Some f -> Num f
                          | None -> Null );
                        ("blocks", int w.Cccs.Analysis.Timing_check.blocks);
                        ( "reachable",
                          int w.Cccs.Analysis.Timing_check.reachable );
                        ( "always_hit",
                          int w.Cccs.Analysis.Timing_check.always_hit );
                        ( "always_miss",
                          int w.Cccs.Analysis.Timing_check.always_miss );
                        ( "unclassified",
                          int w.Cccs.Analysis.Timing_check.unclassified );
                        ( "atb_always_hit",
                          int w.Cccs.Analysis.Timing_check.atb_always_hit );
                        ( "charged_visits",
                          int w.Cccs.Analysis.Timing_check.charged_visits );
                        ( "trace_bounds",
                          Bool w.Cccs.Analysis.Timing_check.trace_bounds );
                      ]
                in
                Obj (base @ [ ("diags", Arr (List.map diag_json diags)) ]))
              results results
          in
          Cccs_obs.Json.Obj
            [
              ("name", Cccs_obs.Json.Str workload);
              ("schemes", Cccs_obs.Json.Arr schemes_json);
            ])
        entries
    in
    let ok = Cccs.Analysis.Diag.Collector.exit_status collector = 0 in
    if json then
      print_endline
        (Cccs_obs.Json.to_string
           (Cccs_obs.Json.Obj
              [
                ("schema", Cccs_obs.Json.Str "cccs-wcet/1");
                ("ok", Cccs_obs.Json.Bool ok);
                ( "errors",
                  Cccs_obs.Json.int
                    (Cccs.Analysis.Diag.Collector.errors collector) );
                ( "warnings",
                  Cccs_obs.Json.int
                    (Cccs.Analysis.Diag.Collector.warnings collector) );
                ("workloads", Cccs_obs.Json.Arr workloads_json);
              ]))
    else
      Format.fprintf out "wcet: %s (%a)@."
        (if ok then "bounded" else "FAILED")
        Cccs.Analysis.Diag.Collector.pp_summary collector;
    exit (Cccs.Analysis.Diag.Collector.exit_status collector)
  in
  Cmd.v
    (Cmd.info "wcet"
       ~doc:
         "Static WCET fetch-timing analysis: must/may cache abstract \
          interpretation over each scheme's recovered CFG, cycle bounds \
          charged from Table 1, and a simulator replay that must observe \
          cycles within the bound")
    Term.(const run $ setup_logs $ bench_opt_arg $ all_arg $ json_arg)

let faults_cmd =
  let flips_arg =
    let doc = "Single-bit-flip trials per surface per scheme." in
    Arg.(value & opt int 64 & info [ "flips" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Campaign seed (deterministic xorshift stream)." in
    Arg.(value & opt int 1999 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let retries_arg =
    let doc = "Recovery refetch attempts before a machine check." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"K" ~doc)
  in
  let protect_arg =
    let doc =
      "Protection mode: $(b,none), $(b,crc8), $(b,crc16), or $(b,both) \
       (unprotected and crc8 side by side)."
    in
    Arg.(value & opt string "both" & info [ "protect" ] ~docv:"MODE" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains for the campaign (default: CCCS_JOBS)." in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Machine-readable report (schema cccs-faults/1) on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let counts_json (c : Cccs.Faults.counts) =
    let open Cccs_obs.Json in
    Obj
      [
        ("injected", int c.Cccs.Faults.injected);
        ("detected", int c.Cccs.Faults.detected);
        ("corrected", int c.Cccs.Faults.corrected);
        ("silent", int c.Cccs.Faults.silent);
        ("benign", int c.Cccs.Faults.benign);
        ("machine_checks", int c.Cccs.Faults.machine_checks);
        ("recovery_cycles", int c.Cccs.Faults.recovery_cycles);
      ]
  in
  let run () bench flips seed retries protect jobs json =
    ignore (find_workload bench);
    let protections =
      match protect with
      | "both" -> [ Encoding.Scheme.Unprotected; Encoding.Scheme.Crc8 ]
      | p -> (
          match Encoding.Scheme.protection_of_name p with
          | Some x -> [ x ]
          | None ->
              Logs.err (fun m ->
                  m "faults: unknown protection %S (none|crc8|crc16|both)" p);
              exit 2)
    in
    let protected_silent = ref 0 in
    let campaigns =
      List.map
        (fun protection ->
          let t =
            Cccs.Faults.run ?jobs
              { Cccs.Faults.bench; seed; flips; retries; protection }
          in
          if not json then Cccs.Report.faults Format.std_formatter t;
          if protection <> Encoding.Scheme.Unprotected then
            List.iter
              (fun row ->
                protected_silent :=
                  !protected_silent + Cccs.Faults.silent_total row)
              t.Cccs.Faults.rows;
          t)
        protections
    in
    if json then begin
      let open Cccs_obs.Json in
      let row_json (r : Cccs.Faults.scheme_report) =
        Obj
          [
            ("scheme", Str r.Cccs.Faults.scheme);
            ( "protection",
              Str (Encoding.Scheme.protection_name r.Cccs.Faults.protection) );
            ("ratio", Num r.Cccs.Faults.ratio);
            ("protection_overhead", Num r.Cccs.Faults.protection_overhead);
            ("rom", counts_json r.Cccs.Faults.rom);
            ("table", counts_json r.Cccs.Faults.table);
            ("cache", counts_json r.Cccs.Faults.cache);
            ("clean_cycles", int r.Cccs.Faults.clean_cycles);
            ("faulty_cycles", int r.Cccs.Faults.faulty_cycles);
          ]
      in
      print_endline
        (to_string
           (Obj
              [
                ("schema", Str "cccs-faults/1");
                ("ok", Bool (!protected_silent = 0));
                ("bench", Str bench);
                ("seed", int seed);
                ( "jobs",
                  int
                    (match jobs with
                    | Some j -> j
                    | None -> Cccs.Parallel.default_jobs ()) );
                ("flips", int flips);
                ("retries", int retries);
                ( "campaigns",
                  Arr
                    (List.map
                       (fun (t : Cccs.Faults.t) ->
                         Obj
                           [
                             ( "protection",
                               Str
                                 (Encoding.Scheme.protection_name
                                    t.Cccs.Faults.spec
                                      .Cccs.Faults.protection) );
                             ( "rows",
                               Arr (List.map row_json t.Cccs.Faults.rows) );
                           ])
                       campaigns) );
              ]))
    end;
    (* Ledger: one row per (protection, scheme) so perfdiff can track
       cycle costs and detection counts across runs. *)
    let ledger_rows =
      List.concat_map
        (fun (t : Cccs.Faults.t) ->
          List.map
            (fun (r : Cccs.Faults.scheme_report) ->
              let open Cccs_obs.Json in
              let sum f =
                f r.Cccs.Faults.rom + f r.Cccs.Faults.table
                + f r.Cccs.Faults.cache
              in
              Obj
                [
                  ( "name",
                    Str
                      (Printf.sprintf "faults/%s/%s"
                         (Encoding.Scheme.protection_name
                            r.Cccs.Faults.protection)
                         r.Cccs.Faults.scheme) );
                  ("ratio", Num r.Cccs.Faults.ratio);
                  ("clean_cycles", int r.Cccs.Faults.clean_cycles);
                  ("faulty_cycles", int r.Cccs.Faults.faulty_cycles);
                  ("detected", int (sum (fun c -> c.Cccs.Faults.detected)));
                  ("silent", int (Cccs.Faults.silent_total r));
                ])
            t.Cccs.Faults.rows)
        campaigns
    in
    let schemes =
      match campaigns with
      | t :: _ ->
          List.map
            (fun (r : Cccs.Faults.scheme_report) -> r.Cccs.Faults.scheme)
            t.Cccs.Faults.rows
      | [] -> []
    in
    ledger_append ~kind:"faults"
      ~jobs:
        (match jobs with Some j -> j | None -> Cccs.Parallel.default_jobs ())
      ~schemes
      ~meta:
        [
          ("bench", Cccs_obs.Json.Str bench);
          ("seed", Cccs_obs.Json.int seed);
          ("flips", Cccs_obs.Json.int flips);
        ]
      ledger_rows;
    if !protected_silent > 0 then begin
      Logs.err (fun m ->
          m "faults: %d silent corruption(s) leaked through CRC protection"
            !protected_silent);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a seeded soft-error fault-injection campaign (ROM, cache and \
          decode-table surfaces) over every scheme; nonzero exit if a \
          protected scheme delivers a silent corruption")
    Term.(const run $ setup_logs $ bench_arg $ flips_arg $ seed_arg
          $ retries_arg $ protect_arg $ jobs_arg $ json_arg)

let fuzz_cmd =
  let seed_arg =
    let doc = "Campaign seed; every case derives its own stream from it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let runs_arg =
    let doc = "Number of fuzz cases." in
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Wall-clock budget in seconds; 0 means unlimited.  A positive budget \
       truncates the campaign, so determinism holds only for (seed, runs)."
    in
    Arg.(value & opt float 0. & info [ "time-budget" ] ~docv:"SECONDS" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains (default: CCCS_JOBS)." in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Machine-readable report (schema cccs-fuzz/1) on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let fixtures_arg =
    let doc =
      "Write a minimized repro fixture (JSON + OCaml snippet) per finding \
       into $(docv)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "fixtures-dir" ] ~docv:"DIR" ~doc)
  in
  let run () seed runs time_budget jobs json fixtures_dir =
    let spec = { Cccs_fuzz.Fuzz.seed; runs; jobs; time_budget; fixtures_dir } in
    let r = Cccs_fuzz.Fuzz.run spec in
    if json then
      print_endline (Cccs_obs.Json.to_string (Cccs_fuzz.Fuzz.report_to_json r))
    else begin
      let t = r.Cccs_fuzz.Fuzz.tallies in
      Format.printf
        "fuzz: %d cases in %.1fs (%.0f/s): %d clean-ok, %d round-trip, %d \
         detected, %d silent-unprotected, %d codeword steps@."
        t.Cccs_fuzz.Fuzz.cases r.Cccs_fuzz.Fuzz.seconds
        (float_of_int t.Cccs_fuzz.Fuzz.cases
        /. Float.max 1e-9 r.Cccs_fuzz.Fuzz.seconds)
        t.Cccs_fuzz.Fuzz.clean_ok t.Cccs_fuzz.Fuzz.roundtrip
        t.Cccs_fuzz.Fuzz.detected t.Cccs_fuzz.Fuzz.silent_unprotected
        t.Cccs_fuzz.Fuzz.codeword_steps;
      List.iter
        (fun (f : Cccs_fuzz.Fuzz.finding) ->
          Format.printf "  FINDING case %d [%s] %s@." f.Cccs_fuzz.Fuzz.case.Cccs_fuzz.Fuzz.id
            (Cccs_fuzz.Fuzz.kind_label f.Cccs_fuzz.Fuzz.kind)
            (Cccs_obs.Json.to_string
               (Cccs_fuzz.Fuzz.case_to_json f.Cccs_fuzz.Fuzz.case)))
        r.Cccs_fuzz.Fuzz.findings
    end;
    let t = r.Cccs_fuzz.Fuzz.tallies in
    ledger_append ~kind:"fuzz"
      ~jobs:
        (match jobs with Some j -> j | None -> Cccs.Parallel.default_jobs ())
      ~meta:
        [
          ("seed", Cccs_obs.Json.int seed);
          ("runs", Cccs_obs.Json.int runs);
        ]
      [
        Cccs_obs.Json.Obj
          [
            ("name", Cccs_obs.Json.Str "fuzz/campaign");
            ("cases", Cccs_obs.Json.int t.Cccs_fuzz.Fuzz.cases);
            ("seconds", Cccs_obs.Json.Num r.Cccs_fuzz.Fuzz.seconds);
            ( "cases_per_s",
              Cccs_obs.Json.Num
                (float_of_int t.Cccs_fuzz.Fuzz.cases
                /. Float.max 1e-9 r.Cccs_fuzz.Fuzz.seconds) );
            ( "findings",
              Cccs_obs.Json.int (List.length r.Cccs_fuzz.Fuzz.findings) );
          ];
      ];
    if r.Cccs_fuzz.Fuzz.findings <> [] then begin
      Logs.err (fun m ->
          m "fuzz: %d finding(s)" (List.length r.Cccs_fuzz.Fuzz.findings));
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the seeded differential fuzzing campaign: random program x \
          scheme x protection x fault, every decoder (LUT, bit-serial, \
          abstract, DFA replay) as an oracle against the others; findings \
          are delta-minimized and exit nonzero")
    Term.(const run $ setup_logs $ seed_arg $ runs_arg $ budget_arg $ jobs_arg
          $ json_arg $ fixtures_arg)

let perfdiff_cmd =
  let baseline_arg =
    let doc =
      "Baseline rows: a BENCH_*.json-style object ($(b,results) array), a \
       single ledger entry or perfdiff report ($(b,rows) array), or a \
       ledger JSONL file (its last matching entry is used).  Without this \
       option the previous matching ledger entry is the baseline."
    in
    Arg.(
      value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let ledger_arg =
    let doc = "Ledger file (default: \\$CCCS_LEDGER or ledger.jsonl)." in
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)
  in
  let kind_arg =
    let doc =
      "Ledger entry kind to compare: $(b,bench), $(b,bench_perf), \
       $(b,bench_fuzz), $(b,verify_all), $(b,faults) or $(b,fuzz)."
    in
    Arg.(value & opt string "bench" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let threshold_arg =
    let doc =
      "Override both regression thresholds (CI-backed and point-only) with \
       one relative change, in percent."
    in
    Arg.(
      value & opt (some float) None & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let warn_arg =
    let doc = "Report regressions but always exit 0." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  let json_arg =
    let doc =
      "Machine-readable report (schema $(b,cccs-perfdiff/1)) on stdout; \
       the human-readable table moves to stderr."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let read_file path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Logs.err (fun m -> m "perfdiff: %s" msg);
      exit 2
  in
  (* Baseline rows from a file: BENCH-style {"results":[...]}, anything
     with a "rows" array (a ledger entry, a perfdiff report), or a ledger
     JSONL file, whose last [kind] entry wins. *)
  let load_baseline path kind =
    match Cccs_obs.Json.parse (read_file path) with
    | Ok j -> (
        match
          ( Option.bind (Cccs_obs.Json.member "results" j) Cccs_obs.Json.to_list,
            Option.bind (Cccs_obs.Json.member "rows" j) Cccs_obs.Json.to_list )
        with
        | Some rows, _ | None, Some rows -> rows
        | None, None ->
            Logs.err (fun m ->
                m "perfdiff: %s has neither a \"results\" nor a \"rows\" array"
                  path);
            exit 2)
    | Error _ -> (
        (* Not one JSON value — try it as a JSONL ledger. *)
        let entries, warnings = Cccs_obs.Ledger.load ~path in
        List.iter
          (fun w -> Logs.warn (fun m -> m "perfdiff: %s: %s" path w))
          warnings;
        match Cccs_obs.Ledger.last ~kind entries with
        | Some e -> e.Cccs_obs.Ledger.rows
        | None ->
            Logs.err (fun m ->
                m "perfdiff: no %S entry in %s (and it is not a JSON report)"
                  kind path);
            exit 2)
  in
  let run () baseline ledger kind threshold warn_only json =
    let ledger_path =
      match ledger with
      | Some p -> p
      | None -> Cccs_obs.Ledger.default_path ()
    in
    let entries, warnings = Cccs_obs.Ledger.load ~path:ledger_path in
    List.iter
      (fun w -> Logs.warn (fun m -> m "ledger %s: %s" ledger_path w))
      warnings;
    let prev, cur_entry = Cccs_obs.Ledger.last_two ~kind entries in
    let cur =
      match cur_entry with
      | Some e -> e
      | None ->
          Logs.err (fun m ->
              m "perfdiff: no %S entry in %s — run the benchmark first" kind
                ledger_path);
          exit 2
    in
    let base_rows, base_desc =
      match baseline with
      | Some path -> (load_baseline path kind, path)
      | None -> (
          match prev with
          | Some e ->
              ( e.Cccs_obs.Ledger.rows,
                Printf.sprintf "ledger %s @ %.0f" e.Cccs_obs.Ledger.git_rev
                  e.Cccs_obs.Ledger.timestamp )
          | None ->
              Logs.err (fun m ->
                  m
                    "perfdiff: only one %S entry in %s and no --baseline — \
                     nothing to compare against"
                    kind ledger_path);
              exit 2)
    in
    let config =
      match threshold with
      | None -> Cccs_obs.Compare.default
      | Some pct ->
          {
            Cccs_obs.Compare.default with
            Cccs_obs.Compare.rel_threshold = pct /. 100.;
            point_threshold = pct /. 100.;
          }
    in
    let rows =
      Cccs_obs.Compare.rows ~config ~base:base_rows
        ~cur:cur.Cccs_obs.Ledger.rows ()
    in
    let s = Cccs_obs.Compare.summarize rows in
    let regressed = Cccs_obs.Compare.any_regressed rows in
    let out = if json then Format.err_formatter else Format.std_formatter in
    Format.fprintf out "perfdiff: %s entries, baseline %s@." kind base_desc;
    Format.fprintf out "%-34s %-11s %14s %14s %8s  %s@." "row" "metric" "base"
      "current" "delta" "verdict";
    List.iter
      (fun (r : Cccs_obs.Compare.row) ->
        Format.fprintf out "%-34s %-11s %14.4g %14.4g %+7.1f%%  %s%s@."
          r.Cccs_obs.Compare.name r.Cccs_obs.Compare.metric
          r.Cccs_obs.Compare.base r.Cccs_obs.Compare.cur
          (100. *. r.Cccs_obs.Compare.slowdown)
          (Cccs_obs.Compare.verdict_name r.Cccs_obs.Compare.verdict)
          (match r.Cccs_obs.Compare.ci with
          | Some (lo, hi) ->
              Printf.sprintf "  [%+.1f%%, %+.1f%%]" (100. *. lo) (100. *. hi)
          | None -> ""))
      rows;
    Format.fprintf out
      "perfdiff: %d improved, %d regressed, %d unchanged, %d untrusted@."
      s.Cccs_obs.Compare.improved s.Cccs_obs.Compare.regressed
      s.Cccs_obs.Compare.unchanged s.Cccs_obs.Compare.untrusted;
    if json then begin
      let open Cccs_obs.Json in
      print_endline
        (to_string
           (Obj
              [
                ("schema", Str "cccs-perfdiff/1");
                ("ok", Bool (not regressed));
                ("kind", Str kind);
                ("ledger", Str ledger_path);
                ("baseline", Str base_desc);
                ( "thresholds",
                  Obj
                    [
                      ("rel", Num config.Cccs_obs.Compare.rel_threshold);
                      ("point", Num config.Cccs_obs.Compare.point_threshold);
                      ("r2_gate", Num config.Cccs_obs.Compare.r2_gate);
                    ] );
                ("rows", Arr (List.map Cccs_obs.Compare.row_to_json rows));
                ( "summary",
                  Obj
                    [
                      ("improved", int s.Cccs_obs.Compare.improved);
                      ("regressed", int s.Cccs_obs.Compare.regressed);
                      ("unchanged", int s.Cccs_obs.Compare.unchanged);
                      ("untrusted", int s.Cccs_obs.Compare.untrusted);
                    ] );
              ]))
    end;
    if regressed && not warn_only then exit 1
  in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Statistically compare the latest ledger entry against the \
          previous one (or an explicit baseline file): bootstrap \
          confidence intervals where samples exist, an r-square noise \
          gate for untrusted rows, and exit 1 on a confirmed regression")
    Term.(const run $ setup_logs $ baseline_arg $ ledger_arg $ kind_arg
          $ threshold_arg $ warn_arg $ json_arg)

let disasm_cmd =
  let run () bench =
    let r = Cccs.Workload_run.load (find_workload bench) in
    print_string
      (Tepic.Asm.print_program r.Cccs.Workload_run.compiled.Cccs.Pipeline.program)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Print a workload's scheduled TEPIC assembly")
    Term.(const run $ setup_logs $ bench_arg)

let stats_cmd =
  let json_arg =
    let doc = "Emit the metrics snapshot as one JSON object on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let flips_arg =
    let doc =
      "Also run a seeded fault campaign with $(docv) flips per surface, so \
       the recovery-latency histogram has samples.  0 disables it."
    in
    Arg.(value & opt int 8 & info [ "flips" ] ~docv:"N" ~doc)
  in
  let baseline_arg =
    let doc =
      "Compare the snapshot's counters and gauges against a previous \
       $(b,cccs stats --json) output; deltas are printed (and embedded in \
       the JSON, together with both schema versions)."
    in
    Arg.(
      value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let run () bench json flips baseline =
    let e = find_workload bench in
    let rc = Cccs_obs.Recorder.create () in
    let obs = Cccs_obs.Recorder.sink rc in
    (* Full instrumentation: compiler stage spans, the four fetch models,
       and (unless --flips 0) a small recovery campaign. *)
    let r = Cccs.Workload_run.load ~obs e in
    let s =
      Cccs_obs.Sink.timed ~obs ~stage:Cccs_obs.Event.Decoder_gen
        ~label:"schemes" (fun () -> Cccs.Experiments.schemes_of r)
    in
    let prog = r.Cccs.Workload_run.compiled.Cccs.Pipeline.program in
    let base_bits = s.Cccs.Experiments.base.Encoding.Scheme.code_bits in
    List.iter
      (fun (sc : Encoding.Scheme.t) ->
        Cccs_obs.Sink.gauge ~obs
          ("ratio." ^ sc.Encoding.Scheme.name)
          (Encoding.Scheme.ratio sc ~baseline_bits:base_bits))
      [
        s.Cccs.Experiments.base;
        s.Cccs.Experiments.full;
        s.Cccs.Experiments.tailored;
      ];
    let trace = r.Cccs.Workload_run.exec.Emulator.Exec.trace in
    let cfg = Fetch.Config.default in
    let cfg_base = Fetch.Config.default_base in
    let att sc c =
      Encoding.Att.build sc ~line_bits:c.Fetch.Config.line_bits prog
    in
    let att_base = att s.Cccs.Experiments.base cfg_base in
    ignore (Fetch.Sim.run_ideal ~obs ~att:att_base trace);
    ignore
      (Fetch.Sim.run ~obs ~model:Fetch.Config.Base ~cfg:cfg_base
         ~scheme:s.Cccs.Experiments.base ~att:att_base trace);
    ignore
      (Fetch.Sim.run ~obs ~model:Fetch.Config.Compressed ~cfg
         ~scheme:s.Cccs.Experiments.full
         ~att:(att s.Cccs.Experiments.full cfg)
         trace);
    ignore
      (Fetch.Sim.run ~obs ~model:Fetch.Config.Tailored ~cfg
         ~scheme:s.Cccs.Experiments.tailored
         ~att:(att s.Cccs.Experiments.tailored cfg)
         trace);
    let fault_seed = 1999 in
    if flips > 0 then
      ignore
        (Cccs.Faults.run ~obs
           {
             Cccs.Faults.bench;
             seed = fault_seed;
             flips;
             retries = 2;
             protection = Encoding.Scheme.Crc8;
           });
    let m = Cccs_obs.Recorder.summarize rc in
    let snap_json =
      Cccs_obs.Export.json_of_snapshot
        ~extra:
          [
            ("schema", Cccs_obs.Json.Str "cccs-stats/1");
            ("bench", Cccs_obs.Json.Str bench);
            ("events", Cccs_obs.Json.int (Cccs_obs.Recorder.length rc));
            (* Effective fault-campaign inputs, so the histogram's
               samples are reproducible from the snapshot alone. *)
            ("seed", Cccs_obs.Json.int fault_seed);
            ("flips", Cccs_obs.Json.int flips);
          ]
        (Cccs_obs.Metrics.snapshot m)
    in
    (* --baseline: numeric deltas of counters/gauges vs a previous
       `cccs stats --json` snapshot, via Obs.Compare. *)
    let baseline_j =
      match baseline with
      | None -> None
      | Some path -> (
          let contents =
            try
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with Sys_error msg ->
              Logs.err (fun m -> m "stats: --baseline: %s" msg);
              exit 2
          in
          match Cccs_obs.Json.parse contents with
          | Ok j -> Some (path, j)
          | Error msg ->
              Logs.err (fun m -> m "stats: --baseline %s: %s" path msg);
              exit 2)
    in
    let deltas =
      Option.map
        (fun (_, bj) -> Cccs_obs.Compare.snapshot_deltas ~base:bj ~cur:snap_json)
        baseline_j
    in
    if json then begin
      let open Cccs_obs.Json in
      let out =
        match (snap_json, baseline_j, deltas) with
        | Obj kvs, Some (path, bj), Some ds ->
            let bschema =
              match member "schema" bj with Some (Str s) -> s | _ -> "unknown"
            in
            Obj
              (kvs
              @ [
                  ("baseline_path", Str path);
                  ("baseline_schema", Str bschema);
                  ( "deltas",
                    Arr
                      (List.map
                         (fun (d : Cccs_obs.Compare.scalar_delta) ->
                           Obj
                             [
                               ("name", Str d.Cccs_obs.Compare.sname);
                               ("base", Num d.Cccs_obs.Compare.sbase);
                               ("cur", Num d.Cccs_obs.Compare.scur);
                             ])
                         ds) );
                ])
        | _ -> snap_json
      in
      print_endline (to_string out)
    end
    else begin
      Printf.printf "bench          %s\n" bench;
      Printf.printf "events         %d\n" (Cccs_obs.Recorder.length rc);
      Format.printf "%a@." Cccs_obs.Metrics.pp m;
      match (baseline_j, deltas) with
      | Some (path, _), Some ds ->
          Printf.printf "deltas vs %s (%d changed):\n" path (List.length ds);
          List.iter
            (fun (d : Cccs_obs.Compare.scalar_delta) ->
              Printf.printf "  %-42s %14.2f -> %14.2f  (%+.2f)\n"
                d.Cccs_obs.Compare.sname d.Cccs_obs.Compare.sbase
                d.Cccs_obs.Compare.scur
                (d.Cccs_obs.Compare.scur -. d.Cccs_obs.Compare.sbase))
            ds
      | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload under full instrumentation (compiler spans, all \
          four fetch models, optional fault campaign) and print the \
          metrics snapshot")
    Term.(const run $ setup_logs $ bench_arg $ json_arg $ flips_arg
          $ baseline_arg)

let export_cmd =
  let run (() : unit) () =
    (* CSV on stdout: one section per figure, ready for any plotting tool. *)
    let rows5 = Cccs.Experiments.fig5 () in
    print_endline "# fig5: bench,scheme,ratio";
    List.iter
      (fun (r : Cccs.Experiments.fig5_row) ->
        List.iter
          (fun (scheme, v) -> Printf.printf "fig5,%s,%s,%.6f\n" r.bench scheme v)
          r.ratios)
      rows5;
    print_endline "# fig13: bench,model,ipc,cycles,l1_misses,mispredicts";
    List.iter
      (fun (r : Cccs.Experiments.fig13_row) ->
        List.iter
          (fun (res : Fetch.Sim.result) ->
            Printf.printf "fig13,%s,%s,%.6f,%d,%d,%d\n" r.bench
              res.Fetch.Sim.model res.Fetch.Sim.ipc res.Fetch.Sim.cycles
              res.Fetch.Sim.l1_misses res.Fetch.Sim.mispredicts)
          [ r.ideal; r.base; r.compressed; r.tailored ])
      (Cccs.Experiments.fig13 ());
    print_endline "# fig14: bench,model,bus_flips";
    List.iter
      (fun (r : Cccs.Experiments.fig14_row) ->
        List.iter
          (fun (m, f) -> Printf.printf "fig14,%s,%s,%d\n" r.bench m f)
          r.flips)
      (Cccs.Experiments.fig14 ());
    (* Full simulator records, one row per (bench, model): every counter in
       Fetch.Sim.result, including the six fault/recovery fields. *)
    print_endline ("# sim: bench," ^ Fetch.Sim.csv_header);
    List.iter
      (fun (r : Cccs.Experiments.fig13_row) ->
        List.iter
          (fun res -> Printf.printf "sim,%s,%s\n" r.bench (Fetch.Sim.csv_row res))
          [ r.ideal; r.base; r.compressed; r.tailored ])
      (Cccs.Experiments.fig13 ())
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Dump figure data as CSV for external plotting")
    Term.(const run $ setup_logs $ const ())

let fig_cmd name doc render =
  Cmd.v (Cmd.info name ~doc)
    Term.(const (fun () -> render Format.std_formatter) $ setup_logs)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let cmds =
    [
      list_cmd;
      compile_cmd;
      compress_cmd;
      decode_cmd;
      simulate_cmd;
      decoder_cmd;
      trace_cmd;
      verify_cmd;
      lint_cmd;
      validate_cmd;
      certify_cmd;
      wcet_cmd;
      faults_cmd;
      fuzz_cmd;
      perfdiff_cmd;
      disasm_cmd;
      stats_cmd;
      export_cmd;
      fig_cmd "fig5" "Reproduce Figure 5 (compression ratios)" (fun ppf ->
          Cccs.Report.fig5 ppf (Cccs.Experiments.fig5 ()));
      fig_cmd "fig7" "Reproduce Figure 7 (total size with ATT)" (fun ppf ->
          Cccs.Report.fig7 ppf (Cccs.Experiments.fig7 ()));
      fig_cmd "fig10" "Reproduce Figure 10 (decoder complexity)" (fun ppf ->
          Cccs.Report.fig10 ppf (Cccs.Experiments.fig10 ()));
      fig_cmd "fig13" "Reproduce Figure 13 (IPC cache study)" (fun ppf ->
          Cccs.Report.fig13 ppf (Cccs.Experiments.fig13 ()));
      fig_cmd "fig14" "Reproduce Figure 14 (bus bit flips)" (fun ppf ->
          Cccs.Report.fig14 ppf (Cccs.Experiments.fig14 ()));
      fig_cmd "ablation" "Hit-time vs miss-time decompression" (fun ppf ->
          Cccs.Report.ablation ppf (Cccs.Experiments.ablation ()));
      fig_cmd "predictors" "2-bit vs gshare prediction (extension)" (fun ppf ->
          Cccs.Report.predictors ppf (Cccs.Experiments.predictors ()));
      fig_cmd "superblocks" "Superblock fetch units (extension)" (fun ppf ->
          Cccs.Report.superblocks ppf (Cccs.Experiments.superblocks ()));
      fig_cmd "all" "Reproduce every figure and extension" (fun ppf ->
          Cccs.Report.all ppf ());
    ]
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "cccs" ~version:"1.0.0"
             ~doc:
               "Compiler-driven cached code compression for embedded ILP \
                processors (MICRO-32 reproduction)")
          cmds))
